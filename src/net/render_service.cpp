#include "net/render_service.hpp"

#include <poll.h>

#include <random>
#include <stdexcept>

#include "util/logging.hpp"
#include "util/telemetry.hpp"

namespace asdr::net {

namespace {

std::string
errorText(std::exception_ptr err)
{
    try {
        std::rethrow_exception(err);
    } catch (const std::exception &e) {
        return e.what();
    } catch (...) {
        return "unknown render error";
    }
}

uint64_t
splitmix64(uint64_t &s)
{
    uint64_t z = (s += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

/** Poll granularity while detached sessions await resume/expiry. */
constexpr int kGracePollMs = 50;

} // namespace

RenderService::RenderService(server::FrameServer &server,
                             const ServiceConfig &cfg)
    : server_(server), cfg_(cfg)
{
    std::random_device rd;
    token_rng_ = (uint64_t(rd()) << 32) ^ uint64_t(rd());
}

RenderService::~RenderService()
{
    stop();
}

bool
RenderService::start(std::string *err)
{
    ASDR_ASSERT(!running_, "service already started");
    if (!wake_.valid()) {
        if (err)
            *err = "wake pipe construction failed";
        return false;
    }
    if (!listener_.bind(cfg_.host, cfg_.port, err))
        return false;
    running_ = true;
    {
        std::lock_guard<std::mutex> lock(reap_m_);
        reap_stop_ = false;
    }
    reaper_ = std::thread([this] { reaperRun(); });
    thread_ = std::thread([this] { run(); });
    return true;
}

void
RenderService::stop()
{
    if (running_.exchange(false)) {
        wake_.wake();
        if (thread_.joinable())
            thread_.join();
    } else if (thread_.joinable()) {
        thread_.join();
    }
    // The service thread is gone; tear down surviving connections from
    // here. No grace windows at shutdown: every session (attached or
    // detached) goes to the reaper, which drains it before exiting.
    std::vector<std::shared_ptr<Connection>> leftover;
    {
        std::lock_guard<std::mutex> lock(m_);
        for (auto &entry : conns_)
            leftover.push_back(entry.second);
    }
    for (auto &conn : leftover)
        teardown(conn, /*allow_grace=*/false);
    std::vector<std::shared_ptr<WireSession>> orphans;
    {
        std::lock_guard<std::mutex> lock(m_);
        for (auto &entry : sessions_)
            orphans.push_back(entry.second);
        detached_sessions_ = 0;
    }
    for (auto &ws : orphans) {
        bool enqueue = false;
        {
            std::lock_guard<std::mutex> lock(ws->m);
            if (!ws->closing) {
                ws->closing = true;
                ws->conn = nullptr;
                enqueue = true;
            }
        }
        if (enqueue)
            enqueueClose({ws, nullptr, false});
    }
    if (reaper_.joinable()) {
        {
            std::lock_guard<std::mutex> lock(reap_m_);
            reap_stop_ = true;
        }
        reap_cv_.notify_all();
        reaper_.join();
    }
    listener_.close();
}

WireCounters
RenderService::counters() const
{
    std::lock_guard<std::mutex> lock(cnt_m_);
    return counters_;
}

// -------------------------------------------------------------- the loop

void
RenderService::run()
{
    std::vector<pollfd> fds;
    std::vector<std::shared_ptr<Connection>> polled;
    while (running_) {
        fds.clear();
        polled.clear();
        fds.push_back({wake_.readFd(), POLLIN, 0});
        fds.push_back({listener_.fd(), POLLIN, 0});
        int timeout = -1;
        size_t span_subs = 0;
        {
            std::lock_guard<std::mutex> lock(m_);
            for (auto &entry : conns_) {
                short events = POLLIN;
                {
                    std::lock_guard<std::mutex> out(entry.second->out_m);
                    if (entry.second->out_bytes > 0)
                        events |= POLLOUT;
                }
                fds.push_back({entry.second->sock.fd(), events, 0});
                polled.push_back(entry.second);
                if (entry.second->telemetry_sub)
                    span_subs++;
            }
            if (detached_sessions_ > 0)
                timeout = kGracePollMs;
        }
        // Span subscribers turn the blocking poll into a periodic one:
        // the drain timer must fire even with no socket activity.
        if (span_subs > 0) {
            const int period = std::max(
                1, int(cfg_.span_stream_period_s * 1e3));
            timeout = timeout < 0 ? period : std::min(timeout, period);
        }
        if (::poll(fds.data(), nfds_t(fds.size()), timeout) < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (!running_)
            break;
        if (fds[0].revents & POLLIN)
            wake_.drain();
        if (fds[1].revents & POLLIN)
            acceptNew();
        for (size_t i = 0; i < polled.size(); ++i) {
            const short re = fds[i + 2].revents;
            if (re & POLLOUT)
                flushOut(polled[i]);
            if (re & (POLLIN | POLLHUP | POLLERR))
                readInput(polled[i]);
        }
        // Reap connections marked dead this pass (handler errors, peer
        // hangups): best-effort flush of a queued Error, then close.
        for (auto &conn : polled) {
            bool dead;
            {
                std::lock_guard<std::mutex> out(conn->out_m);
                dead = conn->dead;
            }
            if (dead) {
                flushOut(conn);
                teardown(conn, /*allow_grace=*/true);
            }
        }
        if (span_subs > 0)
            drainSpanStreams(/*force=*/false);
        expireDetached();
    }
}

size_t
RenderService::telemetrySubscribers()
{
    std::lock_guard<std::mutex> lock(m_);
    size_t n = 0;
    for (auto &entry : conns_)
        if (entry.second->telemetry_sub)
            n++;
    return n;
}

void
RenderService::drainSpanStreams(bool force)
{
    const auto now = std::chrono::steady_clock::now();
    if (!force &&
        std::chrono::duration<double>(now - last_span_drain_).count() <
            cfg_.span_stream_period_s)
        return;
    last_span_drain_ = now;
    std::vector<std::shared_ptr<Connection>> subs;
    {
        std::lock_guard<std::mutex> lock(m_);
        for (auto &entry : conns_)
            if (entry.second->telemetry_sub)
                subs.push_back(entry.second);
    }
    for (auto &conn : subs)
        streamSpansTo(conn);
}

void
RenderService::streamSpansTo(const std::shared_ptr<Connection> &conn)
{
    for (;;) {
        std::vector<telemetry::Span> spans;
        if (telemetry::collectNewSpans(conn->span_cursor, spans,
                                       cfg_.span_stream_max_spans) == 0)
            return;
        bool dead;
        size_t out_bytes;
        {
            std::lock_guard<std::mutex> out(conn->out_m);
            dead = conn->dead;
            out_bytes = conn->out_bytes;
        }
        if (dead)
            return;
        if (out_bytes >= cfg_.max_outbound_bytes) {
            // Degrade-before-shed, telemetry flavor: whole batches are
            // dropped (the cursor already moved past them), counted
            // here and surfaced in the next delivered batch's
            // cumulative `dropped` header. Control replies and frame
            // accounting are never displaced by span traffic.
            conn->span_dropped++;
            {
                std::lock_guard<std::mutex> lock(cnt_m_);
                counters_.span_batches_dropped++;
            }
            continue; // keep draining; later batches may fit
        }
        SpanBatchMsg msg;
        msg.seq = ++conn->span_seq;
        msg.dropped = conn->span_dropped;
        msg.spans.reserve(spans.size());
        for (const telemetry::Span &s : spans)
            msg.spans.push_back(WireSpan{s.name, s.frame, s.ticket,
                                         s.lane, s.t_start_us,
                                         s.t_end_us});
        {
            std::lock_guard<std::mutex> lock(cnt_m_);
            counters_.span_batches_sent++;
        }
        sendControl(*conn, MsgType::SpanBatch, msg);
    }
}

void
RenderService::acceptNew()
{
    for (;;) {
        Socket s = listener_.accept();
        if (!s.valid())
            return;
        size_t open;
        {
            std::lock_guard<std::mutex> lock(m_);
            open = conns_.size();
        }
        if (int(open) >= cfg_.max_connections) {
            // Refuse politely: a one-shot Error, then close.
            ErrorMsg msg;
            msg.code = uint32_t(WireError::Rejected);
            msg.message = "connection limit reached";
            auto bytes = packMessage(MsgType::Error, msg);
            s.sendAll(bytes.data(), bytes.size());
            continue;
        }
        s.setNonBlocking(true);
        s.setNoDelay(true);
        if (cfg_.sndbuf_bytes > 0)
            s.setSendBuffer(cfg_.sndbuf_bytes);
        auto conn = std::make_shared<Connection>();
        conn->sock = std::move(s);
        {
            std::lock_guard<std::mutex> lock(m_);
            conn->id = next_conn_++;
            conns_.emplace(conn->id, conn);
        }
        std::lock_guard<std::mutex> lock(cnt_m_);
        counters_.connections_accepted++;
        counters_.connections_open++;
    }
}

void
RenderService::readInput(const std::shared_ptr<Connection> &conn)
{
    uint8_t buf[64 * 1024];
    for (;;) {
        const ssize_t k = conn->sock.recvSome(buf, sizeof buf);
        if (k == kRecvWouldBlock)
            break;
        if (k == kRecvClosed || k == kRecvError) {
            std::lock_guard<std::mutex> out(conn->out_m);
            conn->dead = true;
            return;
        }
        conn->in.insert(conn->in.end(), buf, buf + k);
        {
            std::lock_guard<std::mutex> lock(cnt_m_);
            counters_.bytes_rx += uint64_t(k);
        }
    }

    size_t off = 0;
    bool violated = false;
    while (conn->in.size() - off >= kHeaderSize) {
        MsgHeader hdr;
        const WireError ferr =
            decodeHeader(conn->in.data() + off, kHeaderSize, hdr);
        if (ferr != WireError::None) {
            sendError(*conn, ferr, "unusable framing");
            violated = true;
            break;
        }
        if (hdr.version != kProtocolVersion) {
            sendError(*conn, WireError::BadVersion,
                      "unsupported protocol version");
            violated = true;
            break;
        }
        // Inbound cap, checked BEFORE waiting for (= buffering) the
        // payload: request messages are tiny; a bigger claim only
        // exists to fill the input buffer.
        if (hdr.length > kMaxRequestPayload) {
            sendError(*conn, WireError::Oversized, "request too large");
            violated = true;
            break;
        }
        if (conn->in.size() - off < kHeaderSize + hdr.length)
            break; // incomplete message; wait for more bytes
        if (!handleMessage(conn, hdr, conn->in.data() + off + kHeaderSize)) {
            violated = true;
            break;
        }
        off += kHeaderSize + hdr.length;
    }
    if (off > 0)
        conn->in.erase(conn->in.begin(),
                       conn->in.begin() + std::ptrdiff_t(off));
    if (violated) {
        std::lock_guard<std::mutex> out(conn->out_m);
        conn->dead = true;
    }
}

void
RenderService::flushOut(const std::shared_ptr<Connection> &conn)
{
    std::lock_guard<std::mutex> out(conn->out_m);
    if (conn->outq.empty())
        return;
    // One flush span per drain attempt with queued bytes (idle polls
    // record nothing).
    telemetry::ScopedSpan span(telemetry::kSpanFlush, 0, 0);
    while (!conn->outq.empty()) {
        const std::vector<uint8_t> &front = conn->outq.front();
        const ssize_t k = conn->sock.sendSome(front.data() + conn->out_off,
                                              front.size() - conn->out_off);
        if (k == kRecvWouldBlock)
            return;
        if (k == kRecvError) {
            conn->dead = true;
            return; // teardown scavenges the unsent queue
        }
        {
            std::lock_guard<std::mutex> lock(cnt_m_);
            counters_.bytes_tx += uint64_t(k);
        }
        conn->out_off += size_t(k);
        conn->out_bytes -= size_t(k);
        if (conn->out_off == front.size()) {
            conn->outq.pop_front();
            conn->out_off = 0;
        }
    }
}

// ------------------------------------------------------------- dispatch

template <typename Msg>
void
RenderService::sendControl(Connection &conn, MsgType type, const Msg &msg)
{
    std::lock_guard<std::mutex> out(conn.out_m);
    enqueueLocked(conn, packMessage(type, msg));
}

void
RenderService::enqueueLocked(Connection &conn, std::vector<uint8_t> &&bytes)
{
    if (conn.dead)
        return;
    conn.out_bytes += bytes.size();
    conn.outq.push_back(std::move(bytes));
    wake_.wake();
}

void
RenderService::sendError(Connection &conn, WireError code,
                         const std::string &message)
{
    ErrorMsg msg;
    msg.code = uint32_t(code);
    // Clamp to the protocol's string cap: an error carrying a client-
    // supplied name must not itself be undecodable on the far side.
    msg.message = message.size() > kMaxString
                      ? message.substr(0, kMaxString)
                      : message;
    sendControl(conn, MsgType::Error, msg);
}

bool
RenderService::handleMessage(const std::shared_ptr<Connection> &conn,
                             const MsgHeader &hdr, const uint8_t *payload)
{
    const size_t len = hdr.length;
    if (!conn->hello_done && hdr.type != MsgType::Hello) {
        sendError(*conn, WireError::NeedHello, "handshake required");
        return false;
    }

    switch (hdr.type) {
    case MsgType::Hello: {
        HelloMsg msg;
        if (!decodePayload(payload, len, msg)) {
            sendError(*conn, WireError::BadMessage, "bad Hello");
            return false;
        }
        if (msg.version != kProtocolVersion) {
            sendError(*conn, WireError::BadVersion,
                      "unsupported protocol version");
            return false;
        }
        conn->hello_done = true;
        HelloOkMsg ok;
        ok.server = cfg_.banner;
        sendControl(*conn, MsgType::HelloOk, ok);
        return true;
    }

    case MsgType::OpenSession: {
        OpenSessionMsg msg;
        if (!decodePayload(payload, len, msg)) {
            sendError(*conn, WireError::BadMessage, "bad OpenSession");
            return false;
        }
        auto ws = std::make_shared<WireSession>();
        ws->qos = server::QosClass(msg.qos);
        ws->encoding = FrameEncoding(msg.encoding);
        const uint64_t id = server_.openSession(
            msg.scene, ws->qos, {},
            [this, ws](server::FrameResult &&r) {
                onResult(ws, std::move(r));
            });
        if (id == 0) {
            sendError(*conn, WireError::UnknownScene,
                      "scene not registered: " + msg.scene);
            return true; // client error, not a protocol violation
        }
        ws->id = id;
        ws->conn = conn;
        conn->sessions.emplace(id, ws);
        {
            std::lock_guard<std::mutex> lock(m_);
            ws->token = splitmix64(token_rng_);
            if (ws->token == 0)
                ws->token = 1;
            sessions_.emplace(id, ws);
        }
        {
            std::lock_guard<std::mutex> lock(cnt_m_);
            counters_.sessions_opened++;
        }
        OpenSessionOkMsg ok;
        ok.session = id;
        ok.token = ws->token;
        sendControl(*conn, MsgType::OpenSessionOk, ok);
        return true;
    }

    case MsgType::ResumeSession: {
        ResumeSessionMsg msg;
        if (!decodePayload(payload, len, msg)) {
            sendError(*conn, WireError::BadMessage, "bad ResumeSession");
            return false;
        }
        std::shared_ptr<WireSession> ws;
        {
            std::lock_guard<std::mutex> lock(m_);
            auto it = sessions_.find(msg.session);
            if (it != sessions_.end())
                ws = it->second;
        }
        if (!ws) {
            sendError(*conn, WireError::ResumeFailed,
                      "unknown or expired session");
            return true;
        }
        bool was_detached = false;
        {
            std::lock_guard<std::mutex> lock(ws->m);
            if (ws->token != msg.token || ws->closing) {
                sendError(*conn, WireError::ResumeFailed,
                          ws->closing ? "session is closing"
                                      : "bad resume token");
                return true;
            }
            if (ws->conn) {
                // Stale attachment: the old socket died but its
                // teardown has not run yet. Steal the session -- the
                // poll thread (us) owns both connections' maps.
                ws->conn->sessions.erase(ws->id);
                ws->conn = nullptr;
            } else {
                was_detached = true;
            }
            ws->conn = conn;
            conn->sessions[ws->id] = ws;
            // Re-seed the delta chain in-band: with no reference, the
            // next Ok frame is encoded in absolute form, so the resumed
            // stream decodes byte-exactly regardless of which frames
            // the dead connection actually delivered.
            ws->reference = Image();
            ResumeSessionOkMsg ok;
            ok.session = ws->id;
            ok.parked = uint32_t(ws->parked.size());
            sendControl(*conn, MsgType::ResumeSessionOk, ok);
            // Replay parked results in completion order, AFTER the Ok.
            while (!ws->parked.empty()) {
                ParkedResult p = std::move(ws->parked.front());
                ws->parked.pop_front();
                const bool had_payload = !p.shed && p.result.ok();
                if (!deliverLocked(conn, *ws, std::move(p.result),
                                   p.shed)) {
                    ws->parked.push_front(std::move(p));
                    break; // conn died mid-replay; teardown re-parks
                }
                if (had_payload && ws->parked_payloads > 0)
                    ws->parked_payloads--;
            }
        }
        if (was_detached) {
            std::lock_guard<std::mutex> lock(m_);
            if (detached_sessions_ > 0)
                detached_sessions_--;
        }
        {
            std::lock_guard<std::mutex> lock(cnt_m_);
            counters_.sessions_resumed++;
        }
        return true;
    }

    case MsgType::CloseSession: {
        CloseSessionMsg msg;
        if (!decodePayload(payload, len, msg)) {
            sendError(*conn, WireError::BadMessage, "bad CloseSession");
            return false;
        }
        auto it = conn->sessions.find(msg.session);
        if (it == conn->sessions.end()) {
            sendError(*conn, WireError::UnknownSession,
                      "no such session");
            return true;
        }
        std::shared_ptr<WireSession> ws = it->second;
        conn->sessions.erase(it);
        {
            // Stays attached: in-flight results keep delivering to the
            // client until the reaper's drain returns, and only then
            // does the reaper queue CloseSessionOk -- so the client
            // never sees a result after the close reply.
            std::lock_guard<std::mutex> lock(ws->m);
            ws->closing = true;
        }
        enqueueClose({std::move(ws), conn, false});
        return true;
    }

    case MsgType::SubmitFrame: {
        SubmitFrameMsg msg;
        if (!decodePayload(payload, len, msg)) {
            sendError(*conn, WireError::BadMessage, "bad SubmitFrame");
            return false;
        }
        auto it = conn->sessions.find(msg.session);
        if (it == conn->sessions.end()) {
            sendError(*conn, WireError::UnknownSession,
                      "no such session");
            return true;
        }
        // Admission-side size gate: past this, the frame could not be
        // delivered in one message (and rendering it would be a
        // memory-exhaustion vector anyway).
        if (rawFrameBytes(msg.camera.width, msg.camera.height) >
            kMaxFrameBytes) {
            sendError(*conn, WireError::Oversized, "frame too large");
            return true;
        }
        const uint64_t ticket =
            server_.submitFrame(msg.session, msg.camera.toCamera());
        if (ticket == 0) {
            sendError(*conn, WireError::Rejected, "session is closing");
            return true;
        }
        SubmitFrameOkMsg ok;
        ok.session = msg.session;
        ok.ticket = ticket;
        sendControl(*conn, MsgType::SubmitFrameOk, ok);
        return true;
    }

    case MsgType::GetStats: {
        GetStatsMsg msg;
        if (!decodePayload(payload, len, msg)) {
            sendError(*conn, WireError::BadMessage, "bad GetStats");
            return false;
        }
        if (msg.format == uint8_t(StatsFormat::Text)) {
            // Prometheus text mode: refresh the snapshot-time gauges
            // (server_.stats() publishes scene/cache/stuck; the wire
            // gauges are published here), then render the registry.
            const WireCounters wc = counters();
            metrics::gauge("asdr_wire_connections_open")
                .set(double(wc.connections_open));
            metrics::gauge("asdr_wire_sessions_opened")
                .set(double(wc.sessions_opened));
            metrics::gauge("asdr_wire_frames_sent")
                .set(double(wc.frames_sent));
            metrics::gauge("asdr_wire_results_shed")
                .set(double(wc.results_shed));
            metrics::gauge("asdr_wire_bytes_tx").set(double(wc.bytes_tx));
            metrics::gauge("asdr_wire_bytes_rx").set(double(wc.bytes_rx));
            (void)server_.stats();
            MetricsReplyMsg reply;
            const std::string text = metrics::renderText();
            reply.text.assign(text.begin(), text.end());
            sendControl(*conn, MsgType::MetricsReply, reply);
            return true;
        }
        StatsReplyMsg reply;
        reply.server = server_.stats();
        reply.wire = counters();
        sendControl(*conn, MsgType::StatsReply, reply);
        return true;
    }

    case MsgType::SubscribeTelemetry: {
        SubscribeTelemetryMsg msg;
        if (!decodePayload(payload, len, msg)) {
            sendError(*conn, WireError::BadMessage,
                      "bad SubscribeTelemetry");
            return false;
        }
        if (msg.enable) {
            if (!conn->telemetry_sub) {
                conn->telemetry_sub = true;
                conn->span_cursor = telemetry::CollectCursor{};
                conn->span_seq = 0;
                conn->span_dropped = 0;
                // A subscriber wants spans: turn recording on if the
                // host process left it off. The service remembers who
                // enabled it and restores the off state when the last
                // subscriber leaves, so a scrape-and-go client does
                // not leave tracing running forever.
                if (!telemetry::enabled()) {
                    telemetry::setEnabled(true);
                    service_enabled_tracing_ = true;
                }
            }
            SubscribeTelemetryOkMsg ok;
            ok.enabled = 1;
            sendControl(*conn, MsgType::SubscribeTelemetryOk, ok);
        } else {
            if (conn->telemetry_sub) {
                // Final drain BEFORE the Ok: batches and the reply
                // share the ordered outbound queue, so the Ok is a
                // deterministic end-of-stream barrier -- the client
                // reads SpanBatch messages until it sees the Ok and
                // misses nothing recorded before the unsubscribe.
                streamSpansTo(conn);
                conn->telemetry_sub = false;
                if (service_enabled_tracing_ &&
                    telemetrySubscribers() == 0) {
                    telemetry::setEnabled(false);
                    service_enabled_tracing_ = false;
                }
            }
            SubscribeTelemetryOkMsg ok;
            ok.enabled = 0;
            sendControl(*conn, MsgType::SubscribeTelemetryOk, ok);
        }
        return true;
    }

    default:
        // Server-to-client types or unknown ids from a client are a
        // protocol violation either way.
        sendError(*conn, WireError::BadMessage, "unexpected message type");
        return false;
    }
}

// -------------------------------------------------- completion delivery

bool
RenderService::deliverLocked(const std::shared_ptr<Connection> &conn,
                             WireSession &ws, server::FrameResult &&result,
                             bool pre_shed)
{
    size_t out_bytes;
    {
        std::lock_guard<std::mutex> out(conn->out_m);
        if (conn->dead)
            return false; // result untouched; the caller parks it
        out_bytes = conn->out_bytes;
    }
    // Encode span: message build + payload encode + enqueue for one
    // delivered result (drops/expiries pass through in microseconds;
    // the interesting ones are the Ok frames' codec time).
    telemetry::ScopedQos qc(uint8_t(result.qos));
    telemetry::ScopedSpan span(telemetry::kSpanEncode, result.frame.id,
                               result.ticket);
    FrameResultMsg msg;
    msg.session = ws.id;
    msg.ticket = result.ticket;
    msg.latency_ms = result.latency_s * 1e3;
    msg.encoding = uint8_t(ws.encoding);
    msg.rung = uint8_t(result.rung);

    bool shed = false, degraded = false;
    uint64_t payload_bytes = 0, raw_bytes = 0;
    if (result.dropped) {
        msg.status = uint8_t(FrameStatus::Dropped);
    } else if (result.expired) {
        msg.status = uint8_t(FrameStatus::DeadlineExceeded);
    } else if (result.error) {
        msg.status = uint8_t(FrameStatus::Failed);
        const std::string text = errorText(result.error);
        msg.payload.assign(text.begin(), text.end());
    } else if (pre_shed) {
        // Payload already dropped (parked bound / scavenged queue);
        // the ticket still gets its one result.
        msg.status = uint8_t(FrameStatus::Shed);
        shed = true;
    } else {
        Image &img = result.frame.image;
        msg.width = uint16_t(img.width());
        msg.height = uint16_t(img.height());
        // The requested dims ride along so the client knows the
        // upscale target of a reduced-resolution rung.
        msg.full_width = uint16_t(
            result.full_width > 0 ? result.full_width : img.width());
        msg.full_height = uint16_t(
            result.full_height > 0 ? result.full_height : img.height());
        raw_bytes = rawFrameBytes(img.width(), img.height());
        if (out_bytes >= cfg_.max_outbound_bytes) {
            // Bounded backpressure: keep the ticket accounting, shed
            // the payload, leave the delta reference alone (the client
            // skips its update too).
            msg.status = uint8_t(FrameStatus::Shed);
            shed = true;
        } else {
            msg.status = uint8_t(FrameStatus::Ok);
            FrameEncoding enc = ws.encoding;
            if (result.rung == server::QualityRung::Quantized8)
                // The ladder floor includes lossy wire encoding. The
                // MESSAGE carries Quantized8, so neither endpoint
                // advances its delta reference off this frame.
                enc = FrameEncoding::Quantized8;
            if (cfg_.degrade_outbound_bytes > 0 &&
                out_bytes >= cfg_.degrade_outbound_bytes &&
                ws.qos == server::QosClass::Interactive &&
                enc != FrameEncoding::Quantized8) {
                // Degrade before shedding: a lossy-but-small frame
                // beats a payload-less Shed for an interactive viewer.
                // The MESSAGE carries Quantized8, so neither endpoint
                // advances its delta reference off this frame.
                enc = FrameEncoding::Quantized8;
                degraded = true;
            }
            msg.encoding = uint8_t(enc);
            const Image *ref =
                enc == FrameEncoding::DeltaPrev && !ws.reference.empty()
                    ? &ws.reference
                    : nullptr;
            msg.payload = encodeFramePayload(img, enc, ref);
            // The result is ours (rvalue); stealing the image avoids a
            // full-frame copy inside the ordering lock.
            if (enc == FrameEncoding::DeltaPrev)
                ws.reference = std::move(img);
            payload_bytes = msg.payload.size();
        }
    }
    // Count BEFORE enqueueing: once the message is on the queue the
    // client may see it, fetch stats, and expect this frame there.
    {
        std::lock_guard<std::mutex> lock(cnt_m_);
        counters_.frames_sent++;
        if (shed)
            counters_.results_shed++;
        if (degraded)
            counters_.results_degraded++;
        counters_.frame_payload_bytes += payload_bytes;
        counters_.frame_raw_bytes += raw_bytes;
    }
    {
        std::lock_guard<std::mutex> out(conn->out_m);
        enqueueLocked(*conn, packMessage(MsgType::FrameResult, msg));
    }
    wake_.wake();
    return true;
}

void
RenderService::onResult(const std::shared_ptr<WireSession> &ws,
                        server::FrameResult &&result)
{
    std::lock_guard<std::mutex> lock(ws->m);
    if (ws->conn &&
        deliverLocked(ws->conn, *ws, std::move(result), false))
        return;
    // Detached (or the socket died under us). Park for resume when a
    // grace window exists; otherwise the session is going away and the
    // result has nowhere to land.
    if (ws->closing || cfg_.resume_grace_s <= 0.0)
        return;
    ParkedResult p;
    p.result = std::move(result);
    const bool has_payload = p.result.ok();
    if (has_payload) {
        if (ws->parked_payloads >= cfg_.max_parked_results) {
            // Payload bound hit: shed the OLDEST parked payload so the
            // freshest frames survive the resume (with a zero bound,
            // shed the newcomer). The result entry stays -- only the
            // pixels go.
            bool shed_old = false;
            for (ParkedResult &q : ws->parked) {
                if (!q.shed && q.result.ok()) {
                    q.result.frame.image = Image();
                    q.shed = true;
                    shed_old = true;
                    break;
                }
            }
            if (shed_old) {
                // counter unchanged: one payload in, one shed
            } else {
                p.result.frame.image = Image();
                p.shed = true;
            }
            std::lock_guard<std::mutex> cnt(cnt_m_);
            counters_.results_shed++;
        } else {
            ws->parked_payloads++;
        }
    }
    ws->parked.push_back(std::move(p));
    std::lock_guard<std::mutex> cnt(cnt_m_);
    counters_.results_parked++;
}

void
RenderService::teardown(const std::shared_ptr<Connection> &conn,
                        bool allow_grace)
{
    // A dead subscriber ends its stream; if it was the reason tracing
    // was on, and no other subscriber remains, restore the off state.
    if (conn->telemetry_sub) {
        conn->telemetry_sub = false;
        if (service_enabled_tracing_ && telemetrySubscribers() == 0) {
            telemetry::setEnabled(false);
            service_enabled_tracing_ = false;
        }
    }
    // Stop the socket side first: no more reads, no more writes.
    // Steal the unsent outbound queue -- complete FrameResult messages
    // still in it are scavenged below so their tickets keep their
    // one-result guarantee across a resume.
    std::deque<std::vector<uint8_t>> unsent;
    size_t front_off = 0;
    {
        std::lock_guard<std::mutex> out(conn->out_m);
        conn->dead = true;
        unsent = std::move(conn->outq);
        front_off = conn->out_off;
        conn->outq.clear();
        conn->out_bytes = 0;
        conn->out_off = 0;
    }
    conn->sock.close();

    const bool grace =
        allow_grace && cfg_.resume_grace_s > 0.0 && running_;

    // Scavenge queued-but-untransmitted results per session: the
    // client never saw them (a partially written front message is
    // discarded by the peer), so re-park them as payload-less Shed
    // results. Only the delta payloads are unrecoverable -- dropping
    // them is exactly what Shed means. (void)front_off: even the
    // partially sent front message is re-parked; the client cannot
    // have decoded a partial frame.
    (void)front_off;
    std::unordered_map<uint64_t, std::vector<ParkedResult>> scavenged;
    if (grace) {
        for (const std::vector<uint8_t> &bytes : unsent) {
            if (bytes.size() < kHeaderSize)
                continue;
            MsgHeader hdr;
            if (decodeHeader(bytes.data(), kHeaderSize, hdr) !=
                    WireError::None ||
                hdr.type != MsgType::FrameResult ||
                bytes.size() != kHeaderSize + hdr.length)
                continue;
            FrameResultMsg msg;
            if (!decodePayload(bytes.data() + kHeaderSize, hdr.length, msg))
                continue;
            if (!conn->sessions.count(msg.session))
                continue;
            ParkedResult p;
            p.result.client = msg.session;
            p.result.ticket = msg.ticket;
            p.result.latency_s = msg.latency_ms / 1e3;
            switch (FrameStatus(msg.status)) {
            case FrameStatus::Dropped:
                p.result.dropped = true;
                break;
            case FrameStatus::DeadlineExceeded:
                p.result.expired = true;
                break;
            case FrameStatus::Failed:
                p.result.error = std::make_exception_ptr(
                    std::runtime_error(std::string(msg.payload.begin(),
                                                   msg.payload.end())));
                break;
            case FrameStatus::Ok:
            case FrameStatus::Shed:
                p.shed = true; // pixels gone; the ticket survives
                break;
            }
            scavenged[msg.session].push_back(std::move(p));
        }
    }

    size_t newly_detached = 0;
    std::vector<CloseJob> closes;
    for (auto &entry : conn->sessions) {
        const std::shared_ptr<WireSession> &ws = entry.second;
        std::lock_guard<std::mutex> lock(ws->m);
        if (ws->conn != conn)
            continue; // already resumed onto another connection
        ws->conn = nullptr;
        if (grace && !ws->closing) {
            auto sc = scavenged.find(ws->id);
            if (sc != scavenged.end()) {
                // Older than anything parked after `dead` flipped on.
                for (auto it = sc->second.rbegin();
                     it != sc->second.rend(); ++it)
                    ws->parked.push_front(std::move(*it));
                std::lock_guard<std::mutex> cnt(cnt_m_);
                counters_.results_parked += sc->second.size();
            }
            ws->detached_at = std::chrono::steady_clock::now();
            newly_detached++;
        } else {
            ws->closing = true;
            closes.push_back({ws, nullptr, false});
        }
    }
    conn->sessions.clear();

    bool erased = false;
    {
        std::lock_guard<std::mutex> lock(m_);
        erased = conns_.erase(conn->id) > 0;
        detached_sessions_ += newly_detached;
    }
    for (auto &job : closes)
        enqueueClose(std::move(job));
    if (erased) {
        std::lock_guard<std::mutex> lock(cnt_m_);
        counters_.connections_open--;
    }
}

void
RenderService::expireDetached()
{
    if (cfg_.resume_grace_s <= 0.0)
        return;
    std::vector<CloseJob> expired;
    const auto now = std::chrono::steady_clock::now();
    {
        std::lock_guard<std::mutex> lock(m_);
        if (detached_sessions_ == 0)
            return;
        for (auto &entry : sessions_) {
            const std::shared_ptr<WireSession> &ws = entry.second;
            std::lock_guard<std::mutex> wl(ws->m);
            if (ws->conn || ws->closing)
                continue;
            const double waited =
                std::chrono::duration<double>(now - ws->detached_at)
                    .count();
            if (waited < cfg_.resume_grace_s)
                continue;
            ws->closing = true;
            expired.push_back({ws, nullptr, true});
            if (detached_sessions_ > 0)
                detached_sessions_--;
        }
    }
    for (auto &job : expired)
        enqueueClose(std::move(job));
}

void
RenderService::enqueueClose(CloseJob &&job)
{
    {
        std::lock_guard<std::mutex> lock(reap_m_);
        reap_q_.push_back(std::move(job));
    }
    reap_cv_.notify_one();
}

void
RenderService::reaperRun()
{
    for (;;) {
        CloseJob job;
        {
            std::unique_lock<std::mutex> lock(reap_m_);
            reap_cv_.wait(lock, [this] {
                return reap_stop_ || !reap_q_.empty();
            });
            if (reap_q_.empty())
                return; // reap_stop_ and fully drained
            job = std::move(reap_q_.front());
            reap_q_.pop_front();
        }
        // The blocking drain, off the poll thread: sheds the session's
        // pending frames and waits out in-flight ones. Their result
        // callbacks run before closeSession returns, so everything the
        // client is owed is queued before the Ok below.
        server_.closeSession(job.ws->id);
        if (job.reply_to) {
            CloseSessionOkMsg ok;
            ok.session = job.ws->id;
            sendControl(*job.reply_to, MsgType::CloseSessionOk, ok);
        }
        if (job.expired) {
            std::lock_guard<std::mutex> lock(cnt_m_);
            counters_.sessions_expired++;
        }
        {
            std::lock_guard<std::mutex> lock(m_);
            sessions_.erase(job.ws->id);
        }
    }
}

} // namespace asdr::net
