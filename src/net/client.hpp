/**
 * @file
 * Blocking client of the wire render service -- the library behind
 * examples/render_client and the workload generator's over-the-wire
 * mode, and the reference implementation of the client side of the
 * protocol (handshake, session management, frame decode, delta
 * reference tracking, reconnect-and-resume).
 *
 * The client is single-threaded and strictly ordered: control calls
 * (openSession, submitFrame, ...) send the request and block for its
 * reply; FrameResult messages that arrive while waiting are decoded
 * and buffered, so nextFrame() and control calls interleave freely on
 * one connection. Frames are decoded in receive order, which the
 * service guarantees matches its per-session encode order -- that
 * lockstep is what keeps the DeltaPrev reference chain bit-exact.
 *
 * Fault handling: every failure is classified (lastError()) so callers
 * can tell transient faults -- Timeout, PeerClosed, IoError, all worth
 * a reconnect -- from fatal ones (Protocol corruption, service
 * refusals). openSession() records the server's resume token; after a
 * connection loss, dropConnection() + reconnect() re-dials with
 * exponential backoff and presents ResumeSession{id, token} for every
 * open session, clearing the local delta reference so the server's
 * re-seeded (absolute) first frame decodes byte-exactly.
 * submitFrameRetry() wraps the whole loop for closed-loop drivers.
 *
 * Not thread-safe: drive one Client from one thread (open several
 * connections for concurrency, as the wire workload does).
 */

#ifndef ASDR_NET_CLIENT_HPP
#define ASDR_NET_CLIENT_HPP

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "image/image.hpp"
#include "net/frame_codec.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "server/qos.hpp"

namespace asdr::net {

/** One received frame (or its drop/failure/shed notice), decoded. */
struct ClientFrame
{
    uint64_t session = 0;
    uint64_t ticket = 0;
    FrameStatus status = FrameStatus::Ok;
    FrameEncoding encoding = FrameEncoding::Raw;
    /** Decoded image (Ok results only). */
    Image image;
    /** Error text (Failed results only). */
    std::string error;
    /** Server-side submit -> delivery latency, milliseconds. */
    double latency_ms = 0.0;
    /** Encoded payload size on the wire (the compression numerator). */
    size_t payload_bytes = 0;
    /** Quality-ladder rung the server rendered this frame at. */
    server::QualityRung rung = server::QualityRung::Full;
    /** The resolution the submit asked for (Ok results); `image` is
     *  already upscaled back to it when the server rendered smaller. */
    int full_width = 0;
    int full_height = 0;
    /** The payload arrived below full resolution and was bilinearly
     *  upscaled to full_width x full_height. */
    bool upscaled = false;
    /**
     * Hold-last-frame fallback (Client::setHoldLastFrame): this result
     * carried no payload (Shed/Dropped/DeadlineExceeded) and `image`
     * is the session's previous delivered frame instead -- stale, but
     * displayable. `status` still reports the real outcome.
     */
    bool stale = false;

    bool ok() const { return status == FrameStatus::Ok; }
};

/** Received-frame byte accounting across a connection's lifetime. */
struct ClientTransferStats
{
    uint64_t frames = 0;        ///< Ok frames decoded
    uint64_t payload_bytes = 0; ///< their encoded wire payload bytes
    uint64_t raw_bytes = 0;     ///< what raw float would have cost
};

/** Why the last client call failed (None after a success). */
enum class ClientError
{
    None = 0,
    /** Blocking read hit the receive timeout; the peer may be slow or
     *  gone. Transient: worth a retry/reconnect. */
    Timeout,
    /** The peer closed (or reset) the connection. Transient. */
    PeerClosed,
    /** A socket-level send/recv error (or calling while not
     *  connected). Transient. */
    IoError,
    /** Corrupt framing or an undecodable payload from the service --
     *  a bug or a version skew; retrying cannot help. Fatal. */
    Protocol,
    /** The service answered with an Error message (unknown scene,
     *  rejected submit, failed resume, ...). Fatal for this request. */
    Refused,
};

const char *clientErrorName(ClientError e);

/** Transient errors are connection-level faults a reconnect (or plain
 *  retry, for Timeout) can heal; fatal ones cannot. */
inline bool
isTransient(ClientError e)
{
    return e == ClientError::Timeout || e == ClientError::PeerClosed ||
           e == ClientError::IoError;
}

/** Exponential backoff with jitter for reconnect/retry loops. */
struct RetryPolicy
{
    int max_attempts = 5;
    double base_delay_s = 0.05;
    double multiplier = 2.0;
    double max_delay_s = 2.0;
    /** Fraction of the delay randomized (0 = deterministic, 1 = the
     *  delay varies +-50%); decorrelates clients retrying in sync. */
    double jitter = 0.5;
    uint64_t seed = 0x243F6A8885A308D3ull;
};

/** Delay before retry number `attempt` (0-based): base * mult^attempt,
 *  capped at max, jittered via `rng_state` (splitmix64, advanced). */
double retryBackoff(const RetryPolicy &policy, int attempt,
                    uint64_t &rng_state);

class Client
{
  public:
    Client() = default;
    ~Client() = default;
    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;
    Client(Client &&) = default;
    Client &operator=(Client &&) = default;

    /**
     * Connect + version handshake; forgets any previous session state
     * (use reconnect() to keep it). `recv_timeout_s` bounds every
     * blocking read so a dead service surfaces as an error, not a
     * hang (0 disables the timeout). The endpoint is remembered for
     * reconnect().
     */
    bool connect(const std::string &host, uint16_t port,
                 std::string *err = nullptr, double recv_timeout_s = 30.0);
    /** connect() with backoff across `policy.max_attempts` dials. */
    bool connectWithRetry(const std::string &host, uint16_t port,
                          const RetryPolicy &policy = {},
                          std::string *err = nullptr,
                          double recv_timeout_s = 30.0);
    /** Graceful full teardown: socket, buffered results, references,
     *  and session/resume state all dropped. */
    void disconnect();
    /**
     * Abrupt connection kill: closes the socket WITHOUT the protocol
     * goodbye, keeping buffered results, delta references, and resume
     * tokens -- what a crash or cable pull looks like to the service.
     * Follow with reconnect() (or connect-to-resume by hand) to pick
     * the sessions back up; also the fault-test/bench kill switch.
     */
    void dropConnection();
    bool connected() const { return sock_.valid(); }

    /**
     * Re-dial the remembered endpoint with backoff and resume every
     * open session (ResumeSession with the stored token; the local
     * delta reference is cleared to mirror the server's re-seed).
     * Sessions the service no longer knows are forgotten locally and
     * fail the call -- the caller decides whether to reopen them.
     * Buffered results and transfer stats survive.
     */
    bool reconnect(std::string *err = nullptr,
                   const RetryPolicy &policy = {});
    /** Resume one detached session on the current connection; fills
     *  `parked` (when set) with the number of replayed results. */
    bool resumeSession(uint64_t session, std::string *err = nullptr,
                       uint32_t *parked = nullptr);

    /** Open a session on a registered scene; 0 + `err` on failure.
     *  The resume token from OpenSessionOk is stored internally. */
    uint64_t openSession(const std::string &scene, server::QosClass qos,
                         FrameEncoding encoding,
                         std::string *err = nullptr);
    /** Close a session; buffered/late results of it are discarded. */
    bool closeSession(uint64_t session, std::string *err = nullptr);

    /** Submit one camera pose; returns the ticket (0 + `err` when
     *  refused). Never waits for the render, only for the ack. */
    uint64_t submitFrame(uint64_t session, const CameraSpec &camera,
                         std::string *err = nullptr);
    /**
     * submitFrame with transparent fault recovery: on a TRANSIENT
     * failure (timeout, peer closed, I/O error) the connection is
     * re-dialed, sessions resumed, and the submit retried, up to
     * `policy.max_attempts` tries with backoff. Fatal errors (refusal,
     * protocol corruption) return 0 immediately.
     */
    uint64_t submitFrameRetry(uint64_t session, const CameraSpec &camera,
                              const RetryPolicy &policy = {},
                              std::string *err = nullptr);

    /**
     * Block until the next FrameResult (buffered or from the wire) and
     * decode it. False on connection loss / protocol error. Results
     * arrive in server completion order; correlate by ticket.
     */
    bool nextFrame(ClientFrame &out, std::string *err = nullptr);

    /** Fetch the service's ServerStats + wire counters. */
    bool fetchStats(StatsReplyMsg &out, std::string *err = nullptr);

    /** Fetch the service's metrics registry as Prometheus text
     *  (GetStats with StatsFormat::Text -> MetricsReply). */
    bool fetchMetricsText(std::string &out, std::string *err = nullptr);

    /**
     * Subscribe to (or end) the service's live telemetry span stream.
     * While subscribed, SpanBatch messages arrive interleaved with
     * control replies and frames; they are buffered internally (drain
     * with drainSpans) and never disturb nextFrame()/control calls.
     * Unsubscribing is a deterministic barrier: the service drains
     * everything recorded so far BEFORE the Ok, so after a successful
     * subscribeSpans(false) the buffer holds the complete stream.
     */
    bool subscribeSpans(bool on, std::string *err = nullptr);
    /** Move every buffered streamed span into `out`; returns count. */
    size_t drainSpans(std::vector<WireSpan> &out);
    /** Span batches the service shed under backpressure (cumulative,
     *  from the last SpanBatch header). */
    uint64_t spanBatchesDropped() const { return span_batches_dropped_; }

    /**
     * Tail the service's spans into a growing Perfetto-loadable JSON
     * file: subscribe, then rewrite `path` as a complete trace
     * document after every received batch, until `duration_s` elapses
     * (0 = no time limit) or `*stop` turns true, then unsubscribe and
     * write the final drain. False on connection/protocol failure
     * (the file still holds everything received). The live remote
     * analog of ASDR_TRACE_OUT's exit dump -- no restart needed.
     */
    bool followSpans(const std::string &path, double duration_s,
                     const std::atomic<bool> *stop = nullptr,
                     std::string *err = nullptr);

    const ClientTransferStats &transfer() const { return transfer_; }
    /** Classification of the most recent failure (None on success). */
    ClientError lastError() const { return last_error_; }

    /**
     * Hold-last-frame fallback: when enabled, a payload-less result
     * (Shed, Dropped, DeadlineExceeded) of a session that has already
     * delivered at least one Ok frame gets that previous frame
     * substituted into ClientFrame::image with `stale = true` -- a
     * viewer shows the last good image instead of a gap. Off by
     * default (seed behavior: such results carry an empty image).
     */
    void setHoldLastFrame(bool on) { hold_last_frame_ = on; }
    bool holdLastFrame() const { return hold_last_frame_; }

  private:
    /** Per-open-session resume state. */
    struct SessionState
    {
        uint64_t token = 0;
        FrameEncoding encoding = FrameEncoding::Raw;
    };

    /** One dial + handshake; touches no session state. */
    bool dial(std::string *err);
    /** Resume every known session; expired ones are forgotten. */
    bool resumeAll(std::string *err);
    /** Read exactly one framed message (blocking). */
    bool readMessage(MsgType &type, std::vector<uint8_t> &payload,
                     std::string *err);
    /** Read until a `want` reply arrives, buffering FrameResults and
     *  turning Error replies into a false return. */
    bool waitReply(MsgType want, std::vector<uint8_t> &payload,
                   std::string *err);
    bool send(MsgType type, const std::vector<uint8_t> &packed,
              std::string *err);
    /** Decode + buffer one FrameResult payload. */
    bool takeFrameResult(const std::vector<uint8_t> &payload,
                         std::string *err);
    /** Decode + buffer one SpanBatch payload. */
    bool takeSpanBatch(const std::vector<uint8_t> &payload,
                       std::string *err);
    bool fail(std::string *err, ClientError cls, const std::string &what);

    Socket sock_;
    std::deque<ClientFrame> results_;
    /** Per-session delta reference: last Ok frame, receive order. */
    std::unordered_map<uint64_t, Image> refs_;
    /** Per-session last delivered (post-upscale) frame, for the
     *  hold-last-frame fallback. Only populated when enabled. */
    std::unordered_map<uint64_t, Image> last_frames_;
    bool hold_last_frame_ = false;
    /** Resume tokens + encodings of open sessions. */
    std::unordered_map<uint64_t, SessionState> sessions_;
    ClientTransferStats transfer_;
    ClientError last_error_ = ClientError::None;
    /** Streamed spans awaiting drainSpans(). */
    std::deque<WireSpan> spans_;
    uint64_t span_batches_dropped_ = 0;
    bool span_sub_ = false;

    std::string host_;
    uint16_t port_ = 0;
    double recv_timeout_s_ = 30.0;
};

/** Render streamed spans as a Chrome/Perfetto trace_event JSON
 *  document (same shape as telemetry::toJsonString, so a followed
 *  trace and an exit dump load identically in ui.perfetto.dev). */
std::string spansToTraceJson(const std::vector<WireSpan> &spans);

} // namespace asdr::net

#endif // ASDR_NET_CLIENT_HPP
