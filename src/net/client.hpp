/**
 * @file
 * Blocking client of the wire render service -- the library behind
 * examples/render_client and the workload generator's over-the-wire
 * mode, and the reference implementation of the client side of the
 * protocol (handshake, session management, frame decode, delta
 * reference tracking).
 *
 * The client is single-threaded and strictly ordered: control calls
 * (openSession, submitFrame, ...) send the request and block for its
 * reply; FrameResult messages that arrive while waiting are decoded
 * and buffered, so nextFrame() and control calls interleave freely on
 * one connection. Frames are decoded in receive order, which the
 * service guarantees matches its per-session encode order -- that
 * lockstep is what keeps the DeltaPrev reference chain bit-exact.
 *
 * Not thread-safe: drive one Client from one thread (open several
 * connections for concurrency, as the wire workload does).
 */

#ifndef ASDR_NET_CLIENT_HPP
#define ASDR_NET_CLIENT_HPP

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "image/image.hpp"
#include "net/frame_codec.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "server/qos.hpp"

namespace asdr::net {

/** One received frame (or its drop/failure/shed notice), decoded. */
struct ClientFrame
{
    uint64_t session = 0;
    uint64_t ticket = 0;
    FrameStatus status = FrameStatus::Ok;
    FrameEncoding encoding = FrameEncoding::Raw;
    /** Decoded image (Ok results only). */
    Image image;
    /** Error text (Failed results only). */
    std::string error;
    /** Server-side submit -> delivery latency, milliseconds. */
    double latency_ms = 0.0;
    /** Encoded payload size on the wire (the compression numerator). */
    size_t payload_bytes = 0;

    bool ok() const { return status == FrameStatus::Ok; }
};

/** Received-frame byte accounting across a connection's lifetime. */
struct ClientTransferStats
{
    uint64_t frames = 0;        ///< Ok frames decoded
    uint64_t payload_bytes = 0; ///< their encoded wire payload bytes
    uint64_t raw_bytes = 0;     ///< what raw float would have cost
};

class Client
{
  public:
    Client() = default;
    ~Client() = default;
    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;
    Client(Client &&) = default;
    Client &operator=(Client &&) = default;

    /**
     * Connect + version handshake. `recv_timeout_s` bounds every
     * blocking read so a dead service surfaces as an error, not a
     * hang (0 disables the timeout).
     */
    bool connect(const std::string &host, uint16_t port,
                 std::string *err = nullptr, double recv_timeout_s = 30.0);
    void disconnect();
    bool connected() const { return sock_.valid(); }

    /** Open a session on a registered scene; 0 + `err` on failure. */
    uint64_t openSession(const std::string &scene, server::QosClass qos,
                         FrameEncoding encoding,
                         std::string *err = nullptr);
    /** Close a session; buffered/late results of it are discarded. */
    bool closeSession(uint64_t session, std::string *err = nullptr);

    /** Submit one camera pose; returns the ticket (0 + `err` when
     *  refused). Never waits for the render, only for the ack. */
    uint64_t submitFrame(uint64_t session, const CameraSpec &camera,
                         std::string *err = nullptr);

    /**
     * Block until the next FrameResult (buffered or from the wire) and
     * decode it. False on connection loss / protocol error. Results
     * arrive in server completion order; correlate by ticket.
     */
    bool nextFrame(ClientFrame &out, std::string *err = nullptr);

    /** Fetch the service's ServerStats + wire counters. */
    bool fetchStats(StatsReplyMsg &out, std::string *err = nullptr);

    const ClientTransferStats &transfer() const { return transfer_; }

  private:
    /** Read exactly one framed message (blocking). */
    bool readMessage(MsgType &type, std::vector<uint8_t> &payload,
                     std::string *err);
    /** Read until a `want` reply arrives, buffering FrameResults and
     *  turning Error replies into a false return. */
    bool waitReply(MsgType want, std::vector<uint8_t> &payload,
                   std::string *err);
    bool send(MsgType type, const std::vector<uint8_t> &packed,
              std::string *err);
    /** Decode + buffer one FrameResult payload. */
    bool takeFrameResult(const std::vector<uint8_t> &payload,
                         std::string *err);

    Socket sock_;
    std::deque<ClientFrame> results_;
    /** Per-session delta reference: last Ok frame, receive order. */
    std::unordered_map<uint64_t, Image> refs_;
    ClientTransferStats transfer_;
};

} // namespace asdr::net

#endif // ASDR_NET_CLIENT_HPP
