/**
 * @file
 * Versioned binary wire protocol of the render service: the message
 * vocabulary a client and the socket front end exchange over TCP.
 *
 * Every message is one frame on the wire:
 *
 *   header (12 bytes, little-endian):
 *     u32 magic    'ASDR' (0x52445341)
 *     u16 version  protocol revision; mismatches are rejected at Hello
 *     u16 type     MsgType
 *     u32 length   payload bytes following the header (<= kMaxPayload)
 *   payload: the message struct's explicit little-endian encoding.
 *
 * All codecs are explicit byte-at-a-time little-endian (no struct
 * memcpy, no host-endian assumptions) and decoding is hardened: every
 * read is bounds-checked through WireReader (fail-stick: the first
 * out-of-range read poisons the reader), strings and payloads carry
 * length prefixes validated against hard caps, enums are range-checked,
 * and a decoder accepts a buffer only when it consumes it exactly --
 * truncated, oversized, or trailing-garbage buffers are rejected
 * without reading out of bounds (fuzz-exercised by
 * tests/test_net_protocol.cpp).
 *
 * The conversation (client -> service unless noted):
 *
 *   Hello / HelloOk          version handshake; must come first
 *   OpenSession / -Ok        scene + QoS class + frame encoding; the
 *                            reply carries the session's resume token
 *   SubmitFrame / -Ok        one camera pose; replies with the ticket
 *   FrameResult (service)    async, any time after SubmitFrame: the
 *                            encoded frame (or its drop/failure notice)
 *   ResumeSession / -Ok      re-attach a session that lost its TCP
 *                            connection (token-authenticated, within
 *                            the service's resume grace period). The
 *                            delta reference chain restarts: the first
 *                            Ok frame after a resume travels absolute
 *                            in-band, so the resumed stream is byte-
 *                            exact regardless of what the old
 *                            connection lost in flight.
 *   CloseSession / -Ok       sheds pending frames, waits in-flight ones
 *   GetStats / StatsReply    ServerStats snapshot + wire counters
 *   SubscribeTelemetry / -Ok live-span subscription toggle; while on,
 *                            the service streams SpanBatch messages
 *   SpanBatch (service)      async: stage spans recorded since the
 *                            last batch (droppable under backpressure,
 *                            drops counted in the next batch header)
 *   Error (service)          failed request, or protocol violation
 *                            (violations are followed by a close)
 */

#ifndef ASDR_NET_PROTOCOL_HPP
#define ASDR_NET_PROTOCOL_HPP

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "nerf/camera.hpp"
#include "server/server_stats.hpp"
#include "util/vec.hpp"

namespace asdr::net {

constexpr uint32_t kMagic = 0x52445341u; // 'A','S','D','R' on the wire
/** v2: ResumeSession/-Ok, resume tokens in OpenSessionOk, the
 *  DeadlineExceeded frame status, and fault-model stats fields. */
/** v3: FrameResult carries the quality-ladder rung + requested dims;
 *  StatsReply carries per-class/per-scene rung occupancy. */
/** v4: StatsReply per-scene sections carry the sample-cache counters
 *  (hits/misses/evictions/epoch_drops). */
/** v5: GetStats carries a format selector (binary StatsReply or
 *  Prometheus text) and MetricsReply carries the text exposition. */
/** v6: SubscribeTelemetry/-Ok + SpanBatch stream live stage spans to a
 *  subscribed client; WireCounters count span batches sent/dropped;
 *  StatsReply per-class sections carry the SLO burn-rate fields. */
constexpr uint16_t kProtocolVersion = 6;
constexpr size_t kHeaderSize = 12;
/** Hard cap on one message's payload; oversized headers are a protocol
 *  violation (a 4K frame is ~200 MB raw -- far beyond this service's
 *  scope, and an unchecked length field is a memory-exhaustion vector). */
constexpr uint32_t kMaxPayload = 64u << 20;
/**
 * Cap on CLIENT -> SERVICE payloads, enforced before buffering: every
 * request message is tiny (the largest, SubmitFrame, is ~70 bytes), so
 * a header claiming more is an attack on the service's input buffers,
 * not a real request. Only service -> client frames need kMaxPayload.
 */
constexpr uint32_t kMaxRequestPayload = 64u * 1024;
/** Cap on one frame's RAW bytes (w*h*12). Kept well under kMaxPayload
 *  so every encoding of an admitted frame -- including the delta RLE's
 *  ~n/128 worst-case expansion -- still fits a single message. */
constexpr uint32_t kMaxFrameBytes = 32u << 20;
/** Cap on any string field (scene names, error text). */
constexpr uint32_t kMaxString = 4096;
/** Cap on spans in one SpanBatch: bounds the decode allocation the
 *  same way kMaxSceneStats bounds StatsReply. */
constexpr uint32_t kMaxSpansPerBatch = 65536;

enum class MsgType : uint16_t
{
    Hello = 1,
    HelloOk = 2,
    OpenSession = 3,
    OpenSessionOk = 4,
    CloseSession = 5,
    CloseSessionOk = 6,
    SubmitFrame = 7,
    SubmitFrameOk = 8,
    FrameResult = 9,
    GetStats = 10,
    StatsReply = 11,
    Error = 12,
    ResumeSession = 13,
    ResumeSessionOk = 14,
    MetricsReply = 15,
    SubscribeTelemetry = 16,
    SubscribeTelemetryOk = 17,
    SpanBatch = 18,
};

const char *msgTypeName(MsgType t);

/** Error codes carried by ErrorMsg. */
enum class WireError : uint32_t
{
    None = 0,
    BadMagic = 1,
    BadVersion = 2,
    BadMessage = 3,    ///< undecodable payload (protocol violation)
    NeedHello = 4,     ///< non-Hello message before the handshake
    UnknownScene = 5,
    UnknownSession = 6,
    Rejected = 7,      ///< submit refused (session closing)
    Oversized = 8,     ///< header length beyond kMaxPayload
    ServerShutdown = 9,
    ResumeFailed = 10, ///< unknown/expired session or bad resume token
};

// ------------------------------------------------------------- primitives

/** Append-only little-endian encoder over a byte vector. */
class WireWriter
{
  public:
    void u8(uint8_t v) { buf_.push_back(v); }
    void u16(uint16_t v)
    {
        buf_.push_back(uint8_t(v));
        buf_.push_back(uint8_t(v >> 8));
    }
    void u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf_.push_back(uint8_t(v >> (8 * i)));
    }
    void u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf_.push_back(uint8_t(v >> (8 * i)));
    }
    void f32(float v)
    {
        uint32_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u32(bits);
    }
    void f64(double v)
    {
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }
    void vec3(const Vec3 &v)
    {
        f32(v.x);
        f32(v.y);
        f32(v.z);
    }
    /** u32 length + raw bytes. */
    void str(const std::string &s)
    {
        u32(uint32_t(s.size()));
        buf_.insert(buf_.end(), s.begin(), s.end());
    }
    void bytes(const std::vector<uint8_t> &b)
    {
        u32(uint32_t(b.size()));
        buf_.insert(buf_.end(), b.begin(), b.end());
    }

    const std::vector<uint8_t> &data() const { return buf_; }
    std::vector<uint8_t> take() { return std::move(buf_); }

  private:
    std::vector<uint8_t> buf_;
};

/**
 * Bounds-checked little-endian decoder. Fail-stick: the first read past
 * the end (or past a cap) sets the error flag, and every subsequent
 * read returns false, so decoders can chain reads and check once.
 */
class WireReader
{
  public:
    WireReader(const uint8_t *data, size_t size) : p_(data), n_(size) {}

    bool u8(uint8_t &v)
    {
        if (!need(1))
            return false;
        v = p_[off_++];
        return true;
    }
    bool u16(uint16_t &v)
    {
        if (!need(2))
            return false;
        v = uint16_t(p_[off_]) | uint16_t(p_[off_ + 1]) << 8;
        off_ += 2;
        return true;
    }
    bool u32(uint32_t &v)
    {
        if (!need(4))
            return false;
        v = 0;
        for (int i = 0; i < 4; ++i)
            v |= uint32_t(p_[off_ + size_t(i)]) << (8 * i);
        off_ += 4;
        return true;
    }
    bool u64(uint64_t &v)
    {
        if (!need(8))
            return false;
        v = 0;
        for (int i = 0; i < 8; ++i)
            v |= uint64_t(p_[off_ + size_t(i)]) << (8 * i);
        off_ += 8;
        return true;
    }
    bool f32(float &v)
    {
        uint32_t bits;
        if (!u32(bits))
            return false;
        std::memcpy(&v, &bits, sizeof v);
        return true;
    }
    bool f64(double &v)
    {
        uint64_t bits;
        if (!u64(bits))
            return false;
        std::memcpy(&v, &bits, sizeof v);
        return true;
    }
    bool vec3(Vec3 &v) { return f32(v.x) && f32(v.y) && f32(v.z); }
    bool str(std::string &s)
    {
        uint32_t len;
        if (!u32(len) || len > kMaxString || !need(len))
            return fail();
        s.assign(reinterpret_cast<const char *>(p_ + off_), len);
        off_ += len;
        return true;
    }
    bool bytes(std::vector<uint8_t> &b)
    {
        uint32_t len;
        if (!u32(len) || len > kMaxPayload || !need(len))
            return fail();
        b.assign(p_ + off_, p_ + off_ + len);
        off_ += len;
        return true;
    }

    bool ok() const { return !failed_; }
    size_t remaining() const { return failed_ ? 0 : n_ - off_; }
    /** A strict decoder requires the buffer consumed exactly. */
    bool atEnd() const { return !failed_ && off_ == n_; }

  private:
    bool need(size_t k)
    {
        if (failed_ || n_ - off_ < k)
            return fail();
        return true;
    }
    bool fail()
    {
        failed_ = true;
        return false;
    }

    const uint8_t *p_;
    size_t n_;
    size_t off_ = 0;
    bool failed_ = false;
};

// ---------------------------------------------------------------- framing

struct MsgHeader
{
    uint16_t version = kProtocolVersion;
    MsgType type = MsgType::Error;
    uint32_t length = 0; ///< payload bytes after the header
};

/** Serialize a header (always kHeaderSize bytes). */
void encodeHeader(const MsgHeader &h, WireWriter &w);

/**
 * Parse a header from the first kHeaderSize bytes of `data`. Magic and
 * length are validated here (framing integrity); the version is left to
 * the Hello handshake so a mismatch gets a proper Error reply.
 * @return WireError::None, or why the framing is unusable.
 */
WireError decodeHeader(const uint8_t *data, size_t size, MsgHeader &out);

/** header + payload, ready to send. */
template <typename Msg>
std::vector<uint8_t>
packMessage(MsgType type, const Msg &msg)
{
    WireWriter payload;
    msg.encode(payload);
    MsgHeader h;
    h.type = type;
    h.length = uint32_t(payload.data().size());
    WireWriter out;
    encodeHeader(h, out);
    std::vector<uint8_t> buf = out.take();
    const std::vector<uint8_t> &p = payload.data();
    buf.insert(buf.end(), p.begin(), p.end());
    return buf;
}

/** Strict payload decode: every field read AND the buffer consumed
 *  exactly. The template keeps call sites one-line. */
template <typename Msg>
bool
decodePayload(const uint8_t *data, size_t size, Msg &out)
{
    WireReader r(data, size);
    return out.decode(r) && r.atEnd();
}

// --------------------------------------------------------------- messages

struct HelloMsg
{
    uint16_t version = kProtocolVersion;

    void encode(WireWriter &w) const;
    bool decode(WireReader &r);
};

struct HelloOkMsg
{
    uint16_t version = kProtocolVersion;
    std::string server; ///< human-readable service banner

    void encode(WireWriter &w) const;
    bool decode(WireReader &r);
};

/** Camera pose + frame geometry: everything needed to reconstruct the
 *  nerf::Camera server-side (resolution is camera-borne end to end). */
struct CameraSpec
{
    Vec3 pos{0.0f, 0.0f, 0.0f};
    Vec3 look_at{0.0f, 0.0f, 1.0f};
    Vec3 up{0.0f, 1.0f, 0.0f};
    float fov_deg = 45.0f;
    uint16_t width = 1;
    uint16_t height = 1;

    nerf::Camera toCamera() const
    {
        return nerf::Camera(pos, look_at, up, fov_deg, width, height);
    }

    void encode(WireWriter &w) const;
    bool decode(WireReader &r);
};

struct OpenSessionMsg
{
    std::string scene;
    uint8_t qos = 1;      ///< server::QosClass, range-checked on decode
    uint8_t encoding = 0; ///< FrameEncoding, range-checked on decode

    void encode(WireWriter &w) const;
    bool decode(WireReader &r);
};

struct OpenSessionOkMsg
{
    uint64_t session = 0;
    /** Resume credential: presented by ResumeSession to re-attach the
     *  session after a connection loss. */
    uint64_t token = 0;

    void encode(WireWriter &w) const;
    bool decode(WireReader &r);
};

struct ResumeSessionMsg
{
    uint64_t session = 0;
    uint64_t token = 0;

    void encode(WireWriter &w) const;
    bool decode(WireReader &r);
};

struct ResumeSessionOkMsg
{
    uint64_t session = 0;
    /** FrameResults that completed while detached; they are replayed,
     *  in order, immediately after this reply. */
    uint32_t parked = 0;

    void encode(WireWriter &w) const;
    bool decode(WireReader &r);
};

struct CloseSessionMsg
{
    uint64_t session = 0;

    void encode(WireWriter &w) const;
    bool decode(WireReader &r);
};

struct CloseSessionOkMsg
{
    uint64_t session = 0;

    void encode(WireWriter &w) const;
    bool decode(WireReader &r);
};

struct SubmitFrameMsg
{
    uint64_t session = 0;
    CameraSpec camera;

    void encode(WireWriter &w) const;
    bool decode(WireReader &r);
};

struct SubmitFrameOkMsg
{
    uint64_t session = 0;
    uint64_t ticket = 0;

    void encode(WireWriter &w) const;
    bool decode(WireReader &r);
};

/** Outcome of one FrameResult on the wire. */
enum class FrameStatus : uint8_t
{
    Ok = 0,      ///< payload holds the encoded frame
    Dropped = 1, ///< shed by the QoS backlog policy; no payload
    Failed = 2,  ///< render threw; payload holds the error text
    Shed = 3,    ///< payload shed by connection backpressure
    /** Expired in the admission queue past its QoS-class deadline;
     *  never rendered, no payload. */
    DeadlineExceeded = 4,
};

struct FrameResultMsg
{
    uint64_t session = 0;
    uint64_t ticket = 0;
    uint8_t status = 0;   ///< FrameStatus, range-checked on decode
    uint8_t encoding = 0; ///< FrameEncoding of the payload
    /** server::QualityRung the frame was served at (range-checked). */
    uint8_t rung = 0;
    /** Payload frame dims -- the resolution actually rendered. */
    uint16_t width = 0;
    uint16_t height = 0;
    /** The resolution the client requested. Equal to width/height
     *  except at reduced-resolution rungs, where the client upscales
     *  the payload back to full_width x full_height. */
    uint16_t full_width = 0;
    uint16_t full_height = 0;
    /** Server-side submit -> delivery latency, milliseconds. */
    double latency_ms = 0.0;
    /** Encoded frame (Ok), error text bytes (Failed), else empty. */
    std::vector<uint8_t> payload;

    void encode(WireWriter &w) const;
    bool decode(WireReader &r);
};

/** Stats exposition formats a GetStats may request. */
enum class StatsFormat : uint8_t
{
    Binary = 0, ///< reply is a StatsReply (snapshot + wire counters)
    Text = 1,   ///< reply is a MetricsReply (Prometheus exposition)
};

struct GetStatsMsg
{
    uint8_t format = 0; ///< StatsFormat, range-checked on decode

    void encode(WireWriter &w) const;
    bool decode(WireReader &r);
};

/** Prometheus text exposition (GetStats with StatsFormat::Text). The
 *  body travels as bytes: it can exceed kMaxString. */
struct MetricsReplyMsg
{
    std::vector<uint8_t> text;

    void encode(WireWriter &w) const;
    bool decode(WireReader &r);
};

/** Toggle a live-span subscription for this connection (v6). While
 *  enabled, the service drains newly recorded stage spans to the
 *  connection as SpanBatch messages on its stream timer. Enabling
 *  turns span recording on service-side if it was off; the reply to a
 *  disable is sent AFTER the final drain, so a follower that reads
 *  until SubscribeTelemetryOk holds every span recorded before the
 *  unsubscribe. */
struct SubscribeTelemetryMsg
{
    uint8_t enable = 1;

    void encode(WireWriter &w) const;
    bool decode(WireReader &r);
};

struct SubscribeTelemetryOkMsg
{
    uint8_t enabled = 0; ///< subscription state after the request

    void encode(WireWriter &w) const;
    bool decode(WireReader &r);
};

/** One stage span on the wire (telemetry::Span with the interned name
 *  carried as a string). */
struct WireSpan
{
    std::string name;
    uint64_t frame = 0;
    uint64_t ticket = 0;
    uint32_t lane = 0;
    uint64_t t_start_us = 0;
    uint64_t t_end_us = 0;

    void encode(WireWriter &w) const;
    bool decode(WireReader &r);
};

/** A batch of live spans (service -> subscribed client, async). */
struct SpanBatchMsg
{
    /** Batch sequence number on this connection, starting at 1. */
    uint64_t seq = 0;
    /** Cumulative batches dropped to this subscriber by outbound
     *  backpressure (whole batches, never partial ones). */
    uint64_t dropped = 0;
    std::vector<WireSpan> spans;

    void encode(WireWriter &w) const;
    bool decode(WireReader &r);
};

/** Socket front-end counters, served next to the render stats. */
struct WireCounters
{
    uint64_t connections_accepted = 0;
    uint64_t connections_open = 0;
    uint64_t sessions_opened = 0;
    uint64_t frames_sent = 0;    ///< FrameResult messages written
    uint64_t results_shed = 0;   ///< payloads dropped by backpressure
    /** Interactive payloads downgraded to quantized8 by backpressure
     *  (the rung BELOW shedding on the degradation ladder). */
    uint64_t results_degraded = 0;
    /** Results completed while their session was detached, held for a
     *  resume. */
    uint64_t results_parked = 0;
    uint64_t sessions_resumed = 0; ///< successful ResumeSession
    /** Detached sessions whose resume grace expired (closed). */
    uint64_t sessions_expired = 0;
    uint64_t bytes_tx = 0;
    uint64_t bytes_rx = 0;
    /** Encoded frame payload bytes vs what raw float would have cost:
     *  the delivery-path analog of the paper's data-reuse savings. */
    uint64_t frame_payload_bytes = 0;
    uint64_t frame_raw_bytes = 0;
    /** Live-telemetry stream (v6): SpanBatch messages written, and
     *  batches dropped by per-subscriber backpressure. */
    uint64_t span_batches_sent = 0;
    uint64_t span_batches_dropped = 0;

    void encode(WireWriter &w) const;
    bool decode(WireReader &r);
};

struct StatsReplyMsg
{
    server::ServerStatsSnapshot server;
    WireCounters wire;

    void encode(WireWriter &w) const;
    bool decode(WireReader &r);
};

struct ErrorMsg
{
    uint32_t code = 0; ///< WireError
    std::string message;

    void encode(WireWriter &w) const;
    bool decode(WireReader &r);
};

} // namespace asdr::net

#endif // ASDR_NET_PROTOCOL_HPP
