#include "net/client.hpp"

namespace asdr::net {

namespace {

void
setErr(std::string *err, const std::string &what)
{
    if (err)
        *err = what;
}

} // namespace

bool
Client::connect(const std::string &host, uint16_t port, std::string *err,
                double recv_timeout_s)
{
    disconnect();
    sock_ = Socket::connectTo(host, port, err);
    if (!sock_.valid())
        return false;
    if (recv_timeout_s > 0.0)
        sock_.setRecvTimeout(recv_timeout_s);

    HelloMsg hello;
    if (!send(MsgType::Hello, packMessage(MsgType::Hello, hello), err))
        return false;
    std::vector<uint8_t> payload;
    if (!waitReply(MsgType::HelloOk, payload, err)) {
        disconnect();
        return false;
    }
    HelloOkMsg ok;
    if (!decodePayload(payload.data(), payload.size(), ok) ||
        ok.version != kProtocolVersion) {
        setErr(err, "handshake: bad HelloOk");
        disconnect();
        return false;
    }
    return true;
}

void
Client::disconnect()
{
    sock_.close();
    results_.clear();
    refs_.clear();
}

uint64_t
Client::openSession(const std::string &scene, server::QosClass qos,
                    FrameEncoding encoding, std::string *err)
{
    OpenSessionMsg msg;
    msg.scene = scene;
    msg.qos = uint8_t(qos);
    msg.encoding = uint8_t(encoding);
    if (!send(MsgType::OpenSession,
              packMessage(MsgType::OpenSession, msg), err))
        return 0;
    std::vector<uint8_t> payload;
    if (!waitReply(MsgType::OpenSessionOk, payload, err))
        return 0;
    OpenSessionOkMsg ok;
    if (!decodePayload(payload.data(), payload.size(), ok) ||
        ok.session == 0) {
        setErr(err, "bad OpenSessionOk");
        return 0;
    }
    return ok.session;
}

bool
Client::closeSession(uint64_t session, std::string *err)
{
    CloseSessionMsg msg;
    msg.session = session;
    if (!send(MsgType::CloseSession,
              packMessage(MsgType::CloseSession, msg), err))
        return false;
    std::vector<uint8_t> payload;
    if (!waitReply(MsgType::CloseSessionOk, payload, err))
        return false;
    CloseSessionOkMsg ok;
    if (!decodePayload(payload.data(), payload.size(), ok)) {
        setErr(err, "bad CloseSessionOk");
        return false;
    }
    refs_.erase(session);
    return true;
}

uint64_t
Client::submitFrame(uint64_t session, const CameraSpec &camera,
                    std::string *err)
{
    SubmitFrameMsg msg;
    msg.session = session;
    msg.camera = camera;
    if (!send(MsgType::SubmitFrame,
              packMessage(MsgType::SubmitFrame, msg), err))
        return 0;
    std::vector<uint8_t> payload;
    if (!waitReply(MsgType::SubmitFrameOk, payload, err))
        return 0;
    SubmitFrameOkMsg ok;
    if (!decodePayload(payload.data(), payload.size(), ok) ||
        ok.ticket == 0) {
        setErr(err, "bad SubmitFrameOk");
        return 0;
    }
    return ok.ticket;
}

bool
Client::nextFrame(ClientFrame &out, std::string *err)
{
    while (results_.empty()) {
        MsgType type;
        std::vector<uint8_t> payload;
        if (!readMessage(type, payload, err))
            return false;
        if (type == MsgType::FrameResult) {
            if (!takeFrameResult(payload, err))
                return false;
        } else {
            setErr(err, std::string("unexpected ") + msgTypeName(type) +
                            " while waiting for a frame");
            return false;
        }
    }
    out = std::move(results_.front());
    results_.pop_front();
    return true;
}

bool
Client::fetchStats(StatsReplyMsg &out, std::string *err)
{
    GetStatsMsg msg;
    if (!send(MsgType::GetStats, packMessage(MsgType::GetStats, msg), err))
        return false;
    std::vector<uint8_t> payload;
    if (!waitReply(MsgType::StatsReply, payload, err))
        return false;
    if (!decodePayload(payload.data(), payload.size(), out)) {
        setErr(err, "bad StatsReply");
        return false;
    }
    return true;
}

// ------------------------------------------------------------- internals

bool
Client::send(MsgType, const std::vector<uint8_t> &packed, std::string *err)
{
    if (!sock_.valid()) {
        setErr(err, "not connected");
        return false;
    }
    if (!sock_.sendAll(packed.data(), packed.size())) {
        setErr(err, "connection lost while sending");
        disconnect();
        return false;
    }
    return true;
}

bool
Client::readMessage(MsgType &type, std::vector<uint8_t> &payload,
                    std::string *err)
{
    if (!sock_.valid()) {
        setErr(err, "not connected");
        return false;
    }
    uint8_t hdr_bytes[kHeaderSize];
    size_t got = 0;
    while (got < kHeaderSize) {
        const ssize_t k =
            sock_.recvSome(hdr_bytes + got, kHeaderSize - got);
        if (k <= 0) {
            setErr(err, k == kRecvClosed ? "connection closed"
                                         : "receive failed (timeout?)");
            disconnect();
            return false;
        }
        got += size_t(k);
    }
    MsgHeader hdr;
    const WireError ferr = decodeHeader(hdr_bytes, kHeaderSize, hdr);
    if (ferr != WireError::None || hdr.version != kProtocolVersion) {
        setErr(err, "corrupt framing from service");
        disconnect();
        return false;
    }
    payload.resize(hdr.length);
    got = 0;
    while (got < payload.size()) {
        const ssize_t k =
            sock_.recvSome(payload.data() + got, payload.size() - got);
        if (k <= 0) {
            setErr(err, "connection lost mid-message");
            disconnect();
            return false;
        }
        got += size_t(k);
    }
    type = hdr.type;
    return true;
}

bool
Client::waitReply(MsgType want, std::vector<uint8_t> &payload,
                  std::string *err)
{
    for (;;) {
        MsgType type;
        if (!readMessage(type, payload, err))
            return false;
        if (type == want)
            return true;
        if (type == MsgType::FrameResult) {
            if (!takeFrameResult(payload, err))
                return false;
            continue;
        }
        if (type == MsgType::Error) {
            ErrorMsg msg;
            if (decodePayload(payload.data(), payload.size(), msg))
                setErr(err, "service error " + std::to_string(msg.code) +
                                ": " + msg.message);
            else
                setErr(err, "undecodable service error");
            return false;
        }
        setErr(err, std::string("unexpected reply ") + msgTypeName(type));
        return false;
    }
}

bool
Client::takeFrameResult(const std::vector<uint8_t> &payload,
                        std::string *err)
{
    FrameResultMsg msg;
    if (!decodePayload(payload.data(), payload.size(), msg)) {
        setErr(err, "corrupt FrameResult");
        disconnect();
        return false;
    }
    ClientFrame frame;
    frame.session = msg.session;
    frame.ticket = msg.ticket;
    frame.status = FrameStatus(msg.status);
    frame.encoding = FrameEncoding(msg.encoding);
    frame.latency_ms = msg.latency_ms;
    frame.payload_bytes = msg.payload.size();

    if (frame.status == FrameStatus::Ok) {
        const FrameEncoding enc = frame.encoding;
        auto rit = refs_.find(msg.session);
        const Image *ref = rit == refs_.end() ? nullptr : &rit->second;
        std::string derr;
        if (!decodeFramePayload(msg.payload.data(), msg.payload.size(),
                                enc, msg.width, msg.height, ref,
                                frame.image, &derr)) {
            setErr(err, "frame decode failed: " + derr);
            disconnect();
            return false;
        }
        // Advance the delta reference in receive order -- the mirror
        // of the service's encode-order update.
        if (enc == FrameEncoding::DeltaPrev)
            refs_[msg.session] = frame.image;
        transfer_.frames++;
        transfer_.payload_bytes += msg.payload.size();
        transfer_.raw_bytes += rawFrameBytes(msg.width, msg.height);
    } else if (frame.status == FrameStatus::Failed) {
        frame.error.assign(msg.payload.begin(), msg.payload.end());
    }
    results_.push_back(std::move(frame));
    return true;
}

} // namespace asdr::net
