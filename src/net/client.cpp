#include "net/client.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>

namespace asdr::net {

namespace {

void
setErr(std::string *err, const std::string &what)
{
    if (err)
        *err = what;
}

uint64_t
splitmix64(uint64_t &s)
{
    uint64_t z = (s += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

} // namespace

const char *
clientErrorName(ClientError e)
{
    switch (e) {
    case ClientError::None:
        return "none";
    case ClientError::Timeout:
        return "timeout";
    case ClientError::PeerClosed:
        return "peer-closed";
    case ClientError::IoError:
        return "io-error";
    case ClientError::Protocol:
        return "protocol";
    case ClientError::Refused:
        return "refused";
    }
    return "?";
}

double
retryBackoff(const RetryPolicy &policy, int attempt, uint64_t &rng_state)
{
    double d = policy.base_delay_s;
    for (int i = 0; i < attempt; ++i) {
        d *= policy.multiplier;
        if (d >= policy.max_delay_s)
            break;
    }
    d = std::min(d, policy.max_delay_s);
    if (policy.jitter > 0.0) {
        // u in [0,1); shift the delay by +-(jitter/2) of itself.
        const double u =
            double(splitmix64(rng_state) >> 11) * 0x1.0p-53;
        d *= 1.0 + policy.jitter * (u - 0.5);
    }
    return std::max(d, 0.0);
}

bool
Client::fail(std::string *err, ClientError cls, const std::string &what)
{
    last_error_ = cls;
    setErr(err, what);
    return false;
}

bool
Client::connect(const std::string &host, uint16_t port, std::string *err,
                double recv_timeout_s)
{
    disconnect();
    host_ = host;
    port_ = port;
    recv_timeout_s_ = recv_timeout_s;
    return dial(err);
}

bool
Client::connectWithRetry(const std::string &host, uint16_t port,
                         const RetryPolicy &policy, std::string *err,
                         double recv_timeout_s)
{
    disconnect();
    host_ = host;
    port_ = port;
    recv_timeout_s_ = recv_timeout_s;
    uint64_t rng = policy.seed ^ (uint64_t(port) << 16);
    const int attempts = std::max(1, policy.max_attempts);
    for (int attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0)
            std::this_thread::sleep_for(std::chrono::duration<double>(
                retryBackoff(policy, attempt - 1, rng)));
        if (dial(err))
            return true;
    }
    return false;
}

bool
Client::dial(std::string *err)
{
    sock_.close();
    std::string serr;
    sock_ = Socket::connectTo(host_, port_, &serr);
    if (!sock_.valid())
        return fail(err, ClientError::IoError, serr);
    if (recv_timeout_s_ > 0.0)
        sock_.setRecvTimeout(recv_timeout_s_);

    HelloMsg hello;
    if (!send(MsgType::Hello, packMessage(MsgType::Hello, hello), err))
        return false;
    std::vector<uint8_t> payload;
    if (!waitReply(MsgType::HelloOk, payload, err)) {
        sock_.close();
        return false;
    }
    HelloOkMsg ok;
    if (!decodePayload(payload.data(), payload.size(), ok) ||
        ok.version != kProtocolVersion) {
        sock_.close();
        return fail(err, ClientError::Protocol, "handshake: bad HelloOk");
    }
    last_error_ = ClientError::None;
    return true;
}

void
Client::disconnect()
{
    sock_.close();
    results_.clear();
    refs_.clear();
    last_frames_.clear();
    sessions_.clear();
    spans_.clear();
    span_batches_dropped_ = 0;
    span_sub_ = false;
}

void
Client::dropConnection()
{
    // No protocol goodbye, no state loss: the service sees an abrupt
    // disconnect; we keep everything needed to resume.
    sock_.close();
}

bool
Client::reconnect(std::string *err, const RetryPolicy &policy)
{
    if (host_.empty())
        return fail(err, ClientError::IoError, "never connected");
    sock_.close();
    uint64_t rng = policy.seed ^ 0x5EC0DE5ECull;
    const int attempts = std::max(1, policy.max_attempts);
    for (int attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0)
            std::this_thread::sleep_for(std::chrono::duration<double>(
                retryBackoff(policy, attempt - 1, rng)));
        if (!dial(err))
            continue;
        if (resumeAll(err))
            return true;
        if (!isTransient(last_error_))
            return false; // e.g. a session expired server-side
        sock_.close(); // connection died again; back off and re-dial
    }
    return false;
}

bool
Client::resumeAll(std::string *err)
{
    std::vector<uint64_t> ids;
    ids.reserve(sessions_.size());
    for (const auto &entry : sessions_)
        ids.push_back(entry.first);
    std::sort(ids.begin(), ids.end());
    for (uint64_t id : ids)
        if (!resumeSession(id, err))
            return false;
    return true;
}

bool
Client::resumeSession(uint64_t session, std::string *err, uint32_t *parked)
{
    auto it = sessions_.find(session);
    if (it == sessions_.end())
        return fail(err, ClientError::Refused,
                    "unknown session (never opened or already closed)");
    ResumeSessionMsg msg;
    msg.session = session;
    msg.token = it->second.token;
    if (!send(MsgType::ResumeSession,
              packMessage(MsgType::ResumeSession, msg), err))
        return false;
    std::vector<uint8_t> payload;
    if (!waitReply(MsgType::ResumeSessionOk, payload, err)) {
        if (last_error_ == ClientError::Refused) {
            // The service no longer knows the session (grace expired,
            // bad token): forget it locally so a later reconnect can
            // succeed for the surviving sessions.
            sessions_.erase(session);
            refs_.erase(session);
        }
        return false;
    }
    ResumeSessionOkMsg ok;
    if (!decodePayload(payload.data(), payload.size(), ok) ||
        ok.session != session)
        return fail(err, ClientError::Protocol, "bad ResumeSessionOk");
    // Mirror the server's re-seed: our next Ok frame arrives in
    // absolute form and restarts the delta chain.
    refs_.erase(session);
    if (parked)
        *parked = ok.parked;
    last_error_ = ClientError::None;
    return true;
}

uint64_t
Client::openSession(const std::string &scene, server::QosClass qos,
                    FrameEncoding encoding, std::string *err)
{
    OpenSessionMsg msg;
    msg.scene = scene;
    msg.qos = uint8_t(qos);
    msg.encoding = uint8_t(encoding);
    if (!send(MsgType::OpenSession,
              packMessage(MsgType::OpenSession, msg), err))
        return 0;
    std::vector<uint8_t> payload;
    if (!waitReply(MsgType::OpenSessionOk, payload, err))
        return 0;
    OpenSessionOkMsg ok;
    if (!decodePayload(payload.data(), payload.size(), ok) ||
        ok.session == 0) {
        fail(err, ClientError::Protocol, "bad OpenSessionOk");
        return 0;
    }
    sessions_[ok.session] = {ok.token, encoding};
    last_error_ = ClientError::None;
    return ok.session;
}

bool
Client::closeSession(uint64_t session, std::string *err)
{
    CloseSessionMsg msg;
    msg.session = session;
    if (!send(MsgType::CloseSession,
              packMessage(MsgType::CloseSession, msg), err))
        return false;
    std::vector<uint8_t> payload;
    if (!waitReply(MsgType::CloseSessionOk, payload, err))
        return false;
    CloseSessionOkMsg ok;
    if (!decodePayload(payload.data(), payload.size(), ok))
        return fail(err, ClientError::Protocol, "bad CloseSessionOk");
    refs_.erase(session);
    last_frames_.erase(session);
    sessions_.erase(session);
    last_error_ = ClientError::None;
    return true;
}

uint64_t
Client::submitFrame(uint64_t session, const CameraSpec &camera,
                    std::string *err)
{
    SubmitFrameMsg msg;
    msg.session = session;
    msg.camera = camera;
    if (!send(MsgType::SubmitFrame,
              packMessage(MsgType::SubmitFrame, msg), err))
        return 0;
    std::vector<uint8_t> payload;
    if (!waitReply(MsgType::SubmitFrameOk, payload, err))
        return 0;
    SubmitFrameOkMsg ok;
    if (!decodePayload(payload.data(), payload.size(), ok) ||
        ok.ticket == 0) {
        fail(err, ClientError::Protocol, "bad SubmitFrameOk");
        return 0;
    }
    last_error_ = ClientError::None;
    return ok.ticket;
}

uint64_t
Client::submitFrameRetry(uint64_t session, const CameraSpec &camera,
                         const RetryPolicy &policy, std::string *err)
{
    uint64_t rng = policy.seed ^ session;
    const int attempts = std::max(1, policy.max_attempts);
    std::string werr;
    for (int attempt = 0; attempt < attempts; ++attempt) {
        if (attempt > 0)
            std::this_thread::sleep_for(std::chrono::duration<double>(
                retryBackoff(policy, attempt - 1, rng)));
        if (!connected()) {
            // Single re-dial + resume per attempt; the outer loop is
            // the backoff schedule.
            RetryPolicy once = policy;
            once.max_attempts = 1;
            if (!reconnect(&werr, once)) {
                if (!isTransient(last_error_))
                    break;
                continue;
            }
        }
        const uint64_t ticket = submitFrame(session, camera, &werr);
        if (ticket)
            return ticket;
        if (!isTransient(last_error_))
            break;
    }
    setErr(err, werr.empty() ? "submit retries exhausted" : werr);
    return 0;
}

bool
Client::nextFrame(ClientFrame &out, std::string *err)
{
    while (results_.empty()) {
        MsgType type;
        std::vector<uint8_t> payload;
        if (!readMessage(type, payload, err))
            return false;
        if (type == MsgType::FrameResult) {
            if (!takeFrameResult(payload, err))
                return false;
        } else if (type == MsgType::SpanBatch) {
            if (!takeSpanBatch(payload, err))
                return false;
        } else {
            return fail(err, ClientError::Protocol,
                        std::string("unexpected ") + msgTypeName(type) +
                            " while waiting for a frame");
        }
    }
    out = std::move(results_.front());
    results_.pop_front();
    last_error_ = ClientError::None;
    return true;
}

bool
Client::fetchStats(StatsReplyMsg &out, std::string *err)
{
    GetStatsMsg msg;
    if (!send(MsgType::GetStats, packMessage(MsgType::GetStats, msg), err))
        return false;
    std::vector<uint8_t> payload;
    if (!waitReply(MsgType::StatsReply, payload, err))
        return false;
    if (!decodePayload(payload.data(), payload.size(), out))
        return fail(err, ClientError::Protocol, "bad StatsReply");
    last_error_ = ClientError::None;
    return true;
}

bool
Client::fetchMetricsText(std::string &out, std::string *err)
{
    GetStatsMsg msg;
    msg.format = uint8_t(StatsFormat::Text);
    if (!send(MsgType::GetStats, packMessage(MsgType::GetStats, msg), err))
        return false;
    std::vector<uint8_t> payload;
    if (!waitReply(MsgType::MetricsReply, payload, err))
        return false;
    MetricsReplyMsg reply;
    if (!decodePayload(payload.data(), payload.size(), reply))
        return fail(err, ClientError::Protocol, "bad MetricsReply");
    out.assign(reply.text.begin(), reply.text.end());
    last_error_ = ClientError::None;
    return true;
}

bool
Client::subscribeSpans(bool on, std::string *err)
{
    SubscribeTelemetryMsg msg;
    msg.enable = on ? 1 : 0;
    if (!send(MsgType::SubscribeTelemetry,
              packMessage(MsgType::SubscribeTelemetry, msg), err))
        return false;
    // waitReply buffers every SpanBatch ahead of the Ok -- on
    // unsubscribe that IS the final drain the service queued before
    // replying, so nothing recorded pre-barrier is lost.
    std::vector<uint8_t> payload;
    if (!waitReply(MsgType::SubscribeTelemetryOk, payload, err))
        return false;
    SubscribeTelemetryOkMsg ok;
    if (!decodePayload(payload.data(), payload.size(), ok))
        return fail(err, ClientError::Protocol,
                    "bad SubscribeTelemetryOk");
    if ((ok.enabled != 0) != on)
        return fail(err, ClientError::Protocol,
                    "SubscribeTelemetryOk state mismatch");
    span_sub_ = on;
    last_error_ = ClientError::None;
    return true;
}

size_t
Client::drainSpans(std::vector<WireSpan> &out)
{
    const size_t n = spans_.size();
    out.reserve(out.size() + n);
    for (auto &s : spans_)
        out.push_back(std::move(s));
    spans_.clear();
    return n;
}

bool
Client::followSpans(const std::string &path, double duration_s,
                    const std::atomic<bool> *stop, std::string *err)
{
    if (!subscribeSpans(true, err))
        return false;
    std::vector<WireSpan> all;
    std::string werr;
    auto writeFile = [&]() -> bool {
        const std::string body = spansToTraceJson(all);
        std::FILE *f = std::fopen(path.c_str(), "wb");
        if (!f) {
            werr = "cannot open " + path;
            return false;
        }
        const size_t wrote = std::fwrite(body.data(), 1, body.size(), f);
        if (wrote != body.size() || std::fclose(f) != 0) {
            werr = "short write to " + path;
            return false;
        }
        return true;
    };
    drainSpans(all);
    bool failed = !writeFile();

    // Poll with a short receive window so `stop`/`duration_s` are
    // honored promptly; a clean-boundary timeout is "nothing new yet"
    // and leaves the connection open.
    sock_.setRecvTimeout(0.2);
    const auto t0 = std::chrono::steady_clock::now();
    while (!failed) {
        if (stop && stop->load(std::memory_order_relaxed))
            break;
        if (duration_s > 0.0 &&
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                    .count() >= duration_s)
            break;
        MsgType type;
        std::vector<uint8_t> payload;
        if (!readMessage(type, payload, &werr)) {
            if (last_error_ == ClientError::Timeout && connected())
                continue;
            failed = true;
            break;
        }
        if (type == MsgType::SpanBatch) {
            if (!takeSpanBatch(payload, &werr)) {
                failed = true;
                break;
            }
        } else if (type == MsgType::FrameResult) {
            if (!takeFrameResult(payload, &werr)) {
                failed = true;
                break;
            }
        } else {
            last_error_ = ClientError::Protocol;
            werr = std::string("unexpected ") + msgTypeName(type) +
                   " while following spans";
            failed = true;
            break;
        }
        // Every batch grows the file in place: the trace is loadable
        // at any moment, not only after a clean shutdown.
        if (drainSpans(all) > 0 && !writeFile()) {
            failed = true;
            break;
        }
    }
    if (connected()) {
        sock_.setRecvTimeout(recv_timeout_s_);
        if (!failed && !subscribeSpans(false, &werr))
            failed = true;
    } else if (!failed) {
        failed = true;
        if (werr.empty())
            werr = "connection lost while following spans";
    }
    drainSpans(all);
    if (!writeFile())
        failed = true;
    if (failed) {
        setErr(err, werr.empty() ? "span follow failed" : werr);
        return false;
    }
    last_error_ = ClientError::None;
    return true;
}

std::string
spansToTraceJson(const std::vector<WireSpan> &spans)
{
    // Same document shape as telemetry::toJsonString, so followed and
    // exit-dumped traces are interchangeable in ui.perfetto.dev. Span
    // names come off the wire, so they get JSON escaping here (the
    // exit dump's names are compiled-in constants).
    auto esc = [](const std::string &s) {
        std::string out;
        out.reserve(s.size());
        for (unsigned char c : s) {
            if (c == '"' || c == '\\') {
                out.push_back('\\');
                out.push_back(char(c));
            } else if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(char(c));
            }
        }
        return out;
    };
    std::ostringstream os;
    os << "{\"traceEvents\":[";
    bool first = true;
    for (const WireSpan &s : spans) {
        if (!first)
            os << ",";
        first = false;
        const uint64_t dur =
            s.t_end_us > s.t_start_us ? s.t_end_us - s.t_start_us : 0;
        os << "{\"name\":\"" << esc(s.name)
           << "\",\"cat\":\"asdr\",\"ph\":\"X\",\"ts\":" << s.t_start_us
           << ",\"dur\":" << dur << ",\"pid\":1,\"tid\":" << s.lane
           << ",\"args\":{\"frame\":" << s.frame
           << ",\"ticket\":" << s.ticket << "}}";
    }
    os << "],\"displayTimeUnit\":\"ms\"}";
    return os.str();
}

// ------------------------------------------------------------- internals

bool
Client::send(MsgType, const std::vector<uint8_t> &packed, std::string *err)
{
    if (!sock_.valid())
        return fail(err, ClientError::IoError, "not connected");
    if (!sock_.sendAll(packed.data(), packed.size())) {
        sock_.close();
        return fail(err, ClientError::IoError,
                    "connection lost while sending");
    }
    return true;
}

bool
Client::readMessage(MsgType &type, std::vector<uint8_t> &payload,
                    std::string *err)
{
    if (!sock_.valid())
        return fail(err, ClientError::IoError, "not connected");
    uint8_t hdr_bytes[kHeaderSize];
    size_t got = 0;
    while (got < kHeaderSize) {
        const ssize_t k =
            sock_.recvSome(hdr_bytes + got, kHeaderSize - got);
        if (k <= 0) {
            // A timeout on a clean message boundary (no header byte
            // read yet) is just "nothing arrived": the stream is
            // intact, so the connection survives -- pollers (span
            // followers) rely on this. A mid-message timeout means a
            // truncated frame and still closes.
            if (k == kRecvWouldBlock && got == 0)
                return fail(err, ClientError::Timeout,
                            "receive timed out");
            sock_.close();
            if (k == kRecvClosed)
                return fail(err, ClientError::PeerClosed,
                            "connection closed by service");
            if (k == kRecvWouldBlock)
                return fail(err, ClientError::Timeout,
                            "receive timed out");
            return fail(err, ClientError::IoError, "receive failed");
        }
        got += size_t(k);
    }
    MsgHeader hdr;
    const WireError ferr = decodeHeader(hdr_bytes, kHeaderSize, hdr);
    if (ferr != WireError::None || hdr.version != kProtocolVersion) {
        sock_.close();
        return fail(err, ClientError::Protocol,
                    "corrupt framing from service");
    }
    payload.resize(hdr.length);
    got = 0;
    while (got < payload.size()) {
        const ssize_t k =
            sock_.recvSome(payload.data() + got, payload.size() - got);
        if (k <= 0) {
            sock_.close();
            if (k == kRecvClosed)
                return fail(err, ClientError::PeerClosed,
                            "connection closed mid-message");
            if (k == kRecvWouldBlock)
                return fail(err, ClientError::Timeout,
                            "receive timed out mid-message");
            return fail(err, ClientError::IoError,
                        "receive failed mid-message");
        }
        got += size_t(k);
    }
    type = hdr.type;
    return true;
}

bool
Client::waitReply(MsgType want, std::vector<uint8_t> &payload,
                  std::string *err)
{
    for (;;) {
        MsgType type;
        if (!readMessage(type, payload, err))
            return false;
        if (type == want)
            return true;
        if (type == MsgType::FrameResult) {
            if (!takeFrameResult(payload, err))
                return false;
            continue;
        }
        if (type == MsgType::SpanBatch) {
            if (!takeSpanBatch(payload, err))
                return false;
            continue;
        }
        if (type == MsgType::Error) {
            ErrorMsg msg;
            if (decodePayload(payload.data(), payload.size(), msg))
                return fail(err, ClientError::Refused,
                            "service error " + std::to_string(msg.code) +
                                ": " + msg.message);
            return fail(err, ClientError::Protocol,
                        "undecodable service error");
        }
        return fail(err, ClientError::Protocol,
                    std::string("unexpected reply ") + msgTypeName(type));
    }
}

bool
Client::takeFrameResult(const std::vector<uint8_t> &payload,
                        std::string *err)
{
    FrameResultMsg msg;
    if (!decodePayload(payload.data(), payload.size(), msg)) {
        sock_.close();
        return fail(err, ClientError::Protocol, "corrupt FrameResult");
    }
    ClientFrame frame;
    frame.session = msg.session;
    frame.ticket = msg.ticket;
    frame.status = FrameStatus(msg.status);
    frame.encoding = FrameEncoding(msg.encoding);
    frame.rung = server::QualityRung(msg.rung);
    frame.latency_ms = msg.latency_ms;
    frame.payload_bytes = msg.payload.size();
    frame.full_width = msg.full_width;
    frame.full_height = msg.full_height;

    if (frame.status == FrameStatus::Ok) {
        const FrameEncoding enc = frame.encoding;
        auto rit = refs_.find(msg.session);
        const Image *ref = rit == refs_.end() ? nullptr : &rit->second;
        std::string derr;
        if (!decodeFramePayload(msg.payload.data(), msg.payload.size(),
                                enc, msg.width, msg.height, ref,
                                frame.image, &derr)) {
            sock_.close();
            return fail(err, ClientError::Protocol,
                        "frame decode failed: " + derr);
        }
        // Advance the delta reference in receive order -- the mirror
        // of the service's encode-order update. Keyed off the MESSAGE
        // encoding, so degraded (Quantized8) frames of a DeltaPrev
        // session leave the chain alone, exactly like the server. The
        // reference is the PRE-upscale image: the service's reference
        // is whatever it encoded, payload-resolution included.
        if (enc == FrameEncoding::DeltaPrev)
            refs_[msg.session] = frame.image;
        transfer_.frames++;
        transfer_.payload_bytes += msg.payload.size();
        transfer_.raw_bytes += rawFrameBytes(msg.width, msg.height);
        // Reduced-resolution rung: bring the frame back up to the
        // requested size (after the reference update above).
        if (msg.full_width > 0 && msg.full_height > 0 &&
            (msg.full_width != msg.width ||
             msg.full_height != msg.height)) {
            frame.image = upscaleBilinear(frame.image, msg.full_width,
                                          msg.full_height);
            frame.upscaled = true;
        }
        if (hold_last_frame_)
            last_frames_[msg.session] = frame.image;
    } else if (frame.status == FrameStatus::Failed) {
        frame.error.assign(msg.payload.begin(), msg.payload.end());
    } else if (hold_last_frame_ &&
               (frame.status == FrameStatus::Shed ||
                frame.status == FrameStatus::Dropped ||
                frame.status == FrameStatus::DeadlineExceeded)) {
        // Hold-last-frame: a payload-less outcome shows the session's
        // previous delivered image rather than a gap, flagged stale.
        auto lit = last_frames_.find(msg.session);
        if (lit != last_frames_.end()) {
            frame.image = lit->second;
            frame.stale = true;
        }
    }
    results_.push_back(std::move(frame));
    return true;
}

bool
Client::takeSpanBatch(const std::vector<uint8_t> &payload, std::string *err)
{
    SpanBatchMsg msg;
    if (!decodePayload(payload.data(), payload.size(), msg)) {
        sock_.close();
        return fail(err, ClientError::Protocol, "corrupt SpanBatch");
    }
    // `dropped` is cumulative per subscription; last header wins.
    span_batches_dropped_ = msg.dropped;
    for (WireSpan &s : msg.spans)
        spans_.push_back(std::move(s));
    return true;
}

} // namespace asdr::net
