#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "util/fault.hpp"

namespace asdr::net {

namespace {

void
setErr(std::string *err, const std::string &what)
{
    if (err)
        *err = what + ": " + std::strerror(errno);
}

bool
parseAddr(const std::string &host, uint16_t port, sockaddr_in &addr,
          std::string *err)
{
    std::memset(&addr, 0, sizeof addr);
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        if (err)
            *err = "not a numeric IPv4 address: " + host;
        return false;
    }
    return true;
}

} // namespace

Socket &
Socket::operator=(Socket &&o) noexcept
{
    if (this != &o) {
        close();
        fd_ = o.fd_;
        o.fd_ = -1;
    }
    return *this;
}

void
Socket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
Socket::setNonBlocking(bool on)
{
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    if (flags < 0)
        return false;
    const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
    return ::fcntl(fd_, F_SETFL, want) == 0;
}

bool
Socket::setNoDelay(bool on)
{
    const int v = on ? 1 : 0;
    return ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &v, sizeof v) == 0;
}

bool
Socket::setRecvTimeout(double seconds)
{
    timeval tv;
    tv.tv_sec = time_t(seconds);
    tv.tv_usec = suseconds_t((seconds - double(tv.tv_sec)) * 1e6);
    return ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv) == 0;
}

bool
Socket::setSendBuffer(size_t bytes)
{
    const int v = int(bytes);
    return ::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &v, sizeof v) == 0;
}

bool
Socket::sendAll(const void *data, size_t n)
{
    if (fault::fire(fault::kSocketSend)) {
        close(); // an injected tear leaves the fd unusable, like a RST
        return false;
    }
    const uint8_t *p = static_cast<const uint8_t *>(data);
    while (n > 0) {
        const ssize_t k = ::send(fd_, p, n, MSG_NOSIGNAL);
        if (k < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += k;
        n -= size_t(k);
    }
    return true;
}

ssize_t
Socket::sendSome(const void *data, size_t n)
{
    if (fault::fire(fault::kSocketSend))
        return kRecvError;
    for (;;) {
        const ssize_t k = ::send(fd_, data, n, MSG_NOSIGNAL);
        if (k >= 0)
            return k;
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return kRecvWouldBlock;
        return kRecvError;
    }
}

ssize_t
Socket::recvSome(void *data, size_t n)
{
    if (fault::fire(fault::kSocketRecv))
        return kRecvError;
    for (;;) {
        const ssize_t k = ::recv(fd_, data, n, 0);
        if (k > 0)
            return k;
        if (k == 0)
            return kRecvClosed;
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return kRecvWouldBlock;
        return kRecvError;
    }
}

Socket
Socket::connectTo(const std::string &host, uint16_t port, std::string *err)
{
    sockaddr_in addr;
    if (!parseAddr(host, port, addr, err))
        return Socket();
    Socket s(::socket(AF_INET, SOCK_STREAM, 0));
    if (!s.valid()) {
        setErr(err, "socket");
        return Socket();
    }
    for (;;) {
        if (::connect(s.fd(), reinterpret_cast<sockaddr *>(&addr),
                      sizeof addr) == 0)
            break;
        if (errno == EINTR)
            continue;
        setErr(err, "connect " + host);
        return Socket();
    }
    s.setNoDelay(true);
    return s;
}

bool
TcpListener::bind(const std::string &host, uint16_t port, std::string *err)
{
    close();
    sockaddr_in addr;
    if (!parseAddr(host, port, addr, err))
        return false;
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        setErr(err, "socket");
        return false;
    }
    const int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd_, reinterpret_cast<sockaddr *>(&addr), sizeof addr) != 0) {
        setErr(err, "bind " + host);
        close();
        return false;
    }
    if (::listen(fd_, 64) != 0) {
        setErr(err, "listen");
        close();
        return false;
    }
    sockaddr_in bound;
    socklen_t len = sizeof bound;
    if (::getsockname(fd_, reinterpret_cast<sockaddr *>(&bound), &len) != 0) {
        setErr(err, "getsockname");
        close();
        return false;
    }
    port_ = ntohs(bound.sin_port);
    const int flags = ::fcntl(fd_, F_GETFL, 0);
    ::fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
    return true;
}

void
TcpListener::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    port_ = 0;
}

Socket
TcpListener::accept()
{
    for (;;) {
        const int fd = ::accept(fd_, nullptr, nullptr);
        if (fd >= 0)
            return Socket(fd);
        if (errno == EINTR)
            continue;
        return Socket();
    }
}

WakePipe::WakePipe()
{
    int fds[2];
    if (::pipe(fds) == 0) {
        rfd_ = fds[0];
        wfd_ = fds[1];
        for (int fd : fds) {
            const int flags = ::fcntl(fd, F_GETFL, 0);
            ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
        }
    }
}

WakePipe::~WakePipe()
{
    if (rfd_ >= 0)
        ::close(rfd_);
    if (wfd_ >= 0)
        ::close(wfd_);
}

void
WakePipe::wake()
{
    if (wfd_ < 0)
        return;
    const uint8_t b = 1;
    // A full pipe already holds a pending wake; EAGAIN is success.
    (void)!::write(wfd_, &b, 1);
}

void
WakePipe::drain()
{
    if (rfd_ < 0)
        return;
    uint8_t buf[256];
    while (::read(rfd_, buf, sizeof buf) > 0) {
    }
}

} // namespace asdr::net
