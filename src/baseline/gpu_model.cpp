#include "baseline/gpu_model.hpp"

#include <algorithm>

namespace asdr::baseline {

GpuReport
GpuModel::run(const core::WorkloadProfile &profile,
              const nerf::FieldCosts &costs) const
{
    GpuReport report;
    report.device = spec_.name;

    double enc_flops = profile.encodeFlops(costs);
    double gather_bytes = profile.lookupBytes(costs);
    report.enc_seconds = std::max(
        enc_flops / (spec_.peak_flops * spec_.encode_efficiency),
        gather_bytes / (spec_.mem_bandwidth * spec_.gather_efficiency));

    double mlp_flops =
        profile.densityFlops(costs) + profile.colorFlops(costs);
    report.mlp_seconds =
        mlp_flops / (spec_.peak_flops * spec_.mlp_efficiency);

    // Compositing + interpolation are a light, bandwidth-friendly kernel.
    double render_flops =
        double(profile.points) * 10.0 + double(profile.approx_colors) * 6.0;
    report.render_seconds =
        render_flops / (spec_.peak_flops * spec_.mlp_efficiency);

    if (profile.probe_rays > 0) {
        // Adaptive-sampling workloads diverge across warps (variable
        // per-ray budgets) -- see GpuSpec::divergence_penalty.
        report.enc_seconds *= spec_.divergence_penalty;
        report.mlp_seconds *= spec_.divergence_penalty;
        report.render_seconds *= spec_.divergence_penalty;
    }
    report.seconds =
        report.enc_seconds + report.mlp_seconds + report.render_seconds;
    report.energy_j = report.seconds * spec_.board_power_w;
    return report;
}

} // namespace asdr::baseline
