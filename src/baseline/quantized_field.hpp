/**
 * @file
 * Quality model of fixed-point accelerator datapaths: wraps a radiance
 * field and quantizes its density/color outputs to a given bit width.
 * Used to render the "NeuRex" rows of the quality comparison (Fig. 16,
 * the paper reports NeuRex losing ~0.4 dB to its hardware-friendly
 * encoding); the workload profile is unaffected.
 */

#ifndef ASDR_BASELINE_QUANTIZED_FIELD_HPP
#define ASDR_BASELINE_QUANTIZED_FIELD_HPP

#include "nerf/field.hpp"

namespace asdr::baseline {

class QuantizedField : public nerf::RadianceField
{
  public:
    /**
     * @param inner field to wrap (must outlive this object)
     * @param color_bits fixed-point fraction bits of the color datapath
     * @param sigma_step density quantization step (absolute)
     */
    QuantizedField(const nerf::RadianceField &inner, int color_bits,
                   float sigma_step);

    nerf::DensityOutput density(const Vec3 &pos) const override;
    Vec3 color(const Vec3 &pos, const Vec3 &dir,
               const nerf::DensityOutput &den) const override;
    /** Delegate to the wrapped field's batch path, then quantize, so a
     *  quantized NGP model keeps the fast batched pipeline. */
    void densityBatch(const Vec3 *pos, int count,
                      nerf::DensityOutput *out) const override;
    void colorBatch(const Vec3 *pos, const Vec3 &dir,
                    const nerf::DensityOutput *den, int count,
                    Vec3 *out) const override;
    void traceLookups(const Vec3 &pos,
                      nerf::LookupSink &sink) const override;
    nerf::TableSchema tableSchema() const override;
    nerf::FieldCosts costs() const override;
    std::string describe() const override;

  private:
    const nerf::RadianceField &inner_;
    float color_scale_;
    float sigma_step_;
};

} // namespace asdr::baseline

#endif // ASDR_BASELINE_QUANTIZED_FIELD_HPP
