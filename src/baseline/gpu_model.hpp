/**
 * @file
 * Analytic GPU execution model. Instant-NGP inference on a GPU proceeds
 * in phases (encoding gathers + interpolation, then the fused MLP
 * kernels, then compositing); each phase is modeled by a roofline over
 * the measured workload profile:
 *
 *   t_enc = max(encode FLOPs / (peak * enc_eff),
 *               gather bytes / (bandwidth * gather_eff))
 *   t_mlp = MLP FLOPs / (peak * mlp_eff)
 *
 * Phases execute back-to-back (they are distinct kernels), so frame
 * time = t_enc + t_mlp + t_render. Energy = board power x frame time.
 * The same model prices GPU runs of the ASDR *software* optimizations
 * (Fig. 24): only the workload profile changes.
 */

#ifndef ASDR_BASELINE_GPU_MODEL_HPP
#define ASDR_BASELINE_GPU_MODEL_HPP

#include "baseline/device_specs.hpp"
#include "core/trace.hpp"
#include "nerf/field.hpp"

namespace asdr::baseline {

struct GpuReport
{
    std::string device;
    double enc_seconds = 0.0;
    double mlp_seconds = 0.0;
    double render_seconds = 0.0;
    double seconds = 0.0;
    double energy_j = 0.0;
};

class GpuModel
{
  public:
    explicit GpuModel(const GpuSpec &spec) : spec_(spec) {}

    const GpuSpec &spec() const { return spec_; }

    GpuReport run(const core::WorkloadProfile &profile,
                  const nerf::FieldCosts &costs) const;

  private:
    GpuSpec spec_;
};

} // namespace asdr::baseline

#endif // ASDR_BASELINE_GPU_MODEL_HPP
