#include "baseline/neurex.hpp"

#include <algorithm>
#include <cmath>

namespace asdr::baseline {

NeurexConfig
NeurexConfig::server()
{
    NeurexConfig cfg;
    cfg.power_w = 1.6; // SRAM buffer + systolic array at the same area
    return cfg;
}

NeurexConfig
NeurexConfig::edge()
{
    NeurexConfig cfg;
    cfg.name = "NeuRex-Edge";
    cfg.lookup_lanes = 16;
    cfg.systolic_dim = 64;
    cfg.subgrid_count = 512;
    cfg.shard_bytes = 32e3;
    cfg.dram_bw = 40e9;
    cfg.power_w = 0.75;
    return cfg;
}

NeurexReport
NeurexModel::run(const core::WorkloadProfile &profile,
                 const nerf::FieldCosts &costs) const
{
    NeurexReport report;
    report.name = cfg_.name;

    // Encoding: on-chip lookup streaming plus shard reloads. Each
    // subgrid shard is fetched at least once per frame; rays that march
    // deep into the volume cross additional subgrid boundaries (about
    // one crossing every ~14 samples at an 8^3 partition), partially
    // amortized across the rays of a tile.
    double lookup_cycles = double(profile.lookups) /
                           double(cfg_.lookup_lanes) *
                           cfg_.bank_inefficiency;
    double crossings = double(profile.points) / 14.0;
    double reload_bytes =
        double(cfg_.subgrid_count) * cfg_.shard_bytes * cfg_.reload_factor +
        crossings * cfg_.shard_bytes / 128.0;
    double reload_seconds = reload_bytes / cfg_.dram_bw;
    report.enc_seconds =
        lookup_cycles / cfg_.clock_hz + reload_seconds;

    // MLP: dense weight-stationary array, throughput bound.
    auto macs = [](const std::vector<nerf::LayerShape> &layers) {
        double m = 0.0;
        for (const auto &l : layers)
            m += double(l.in) * double(l.out);
        return m;
    };
    double total_macs =
        double(profile.density_execs) * macs(costs.density_layers) +
        double(profile.color_execs) * macs(costs.color_layers);
    double tput = double(cfg_.systolic_dim) * double(cfg_.systolic_dim) *
                  cfg_.systolic_util;
    report.mlp_seconds = total_macs / tput / cfg_.clock_hz;

    // Encoding and MLP pipeline with imperfect overlap.
    report.seconds =
        std::max(report.enc_seconds, report.mlp_seconds) * 1.15;

    report.energy_j =
        cfg_.power_w * report.seconds + reload_bytes * 20e-12;
    return report;
}

} // namespace asdr::baseline
