/**
 * @file
 * Baseline platform specifications. Peak numbers come from public data
 * sheets; the *achieved-efficiency* factors are the calibration knobs of
 * this reproduction (DESIGN.md §3.5) -- they play the same role as the
 * paper's own normalization ("execution times on the GPUs are scaled
 * based on the ratio of the number of cores", §6.1) and are chosen once,
 * globally, so that average speedups land in the paper's range while
 * every per-scene variation emerges from measured workloads.
 */

#ifndef ASDR_BASELINE_DEVICE_SPECS_HPP
#define ASDR_BASELINE_DEVICE_SPECS_HPP

#include <string>

namespace asdr::baseline {

struct GpuSpec
{
    std::string name;
    double peak_flops = 0.0;     ///< FP32-class peak, FLOP/s
    double mem_bandwidth = 0.0;  ///< bytes/s
    /**
     * Power charged to the rendering workload. Following the paper's
     * methodology, the GPU is normalized to the accelerator's area
     * budget ("we scale the number of computing cores to ensure the
     * same area budget"), so this is the area-scaled share of board
     * power, not the full TDP.
     */
    double board_power_w = 0.0;

    // Achieved-efficiency calibration factors.
    double mlp_efficiency = 0.5;    ///< dense small-batch MLP kernels
    double encode_efficiency = 0.25; ///< gather-heavy hash encoding math
    double gather_efficiency = 0.22; ///< irregular table reads vs peak BW
    /**
     * Slowdown applied to adaptive-sampling workloads (profiles with
     * probe rays): per-pixel budgets varying 8..192 across a warp leave
     * lanes idle, and the two-phase dataflow costs extra launches. The
     * fixed-budget baseline and early termination (coherent within a
     * tile) do not pay this.
     */
    double divergence_penalty = 1.8;

    static GpuSpec rtx3070();
    static GpuSpec xavierNx();
};

inline GpuSpec
GpuSpec::rtx3070()
{
    GpuSpec spec;
    spec.name = "RTX 3070";
    spec.peak_flops = 20.3e12;
    spec.mem_bandwidth = 448e9;
    // ~15 mm^2 of a 392 mm^2 GA104 drawing 185 W sustained.
    spec.board_power_w = 6.2;
    // Calibrated so the suite's average server speedup lands in the
    // paper's range (11.84x). The MLP factor exceeds 1 relative to the
    // fp32 peak because Instant-NGP's fused MLP kernels run on fp16
    // tensor cores (2x the fp32 rate); encoding stays gather-bound.
    spec.mlp_efficiency = 1.2;
    spec.encode_efficiency = 0.35;
    spec.gather_efficiency = 0.21;
    return spec;
}

inline GpuSpec
GpuSpec::xavierNx()
{
    GpuSpec spec;
    spec.name = "Xavier NX";
    spec.peak_flops = 1.69e12; // 15 W mode, FP16-rate effective
    spec.mem_bandwidth = 59.7e9;
    // Area-normalized share of the 15 W module (see board_power_w doc).
    spec.board_power_w = 1.2;
    spec.mlp_efficiency = 1.05; // Volta tensor cores, same fp16 effect
    spec.encode_efficiency = 0.33;
    spec.gather_efficiency = 0.17;
    return spec;
}

} // namespace asdr::baseline

#endif // ASDR_BASELINE_DEVICE_SPECS_HPP
