/**
 * @file
 * NeuRex-like accelerator model (Lee et al., ISCA'23; the paper's main
 * accelerator baseline). NeuRex restructures hash encoding around
 * *subgrids*: the scene grid is partitioned so only one subgrid's hash
 * shard needs to be on chip at a time, loaded from DRAM once per frame
 * in the best case; on-chip lookups stream through a banked SRAM. The
 * MLPs run on a dense weight-stationary array. No adaptive sampling, no
 * color decoupling -- it executes the full workload.
 *
 * Following the paper's methodology ("we construct a cycle-accurate
 * simulator that accounts for NeuRex's performance losses, such as grid
 * cache misses and hardware underutilization"), the model charges a
 * banking-inefficiency factor on lookups and a per-subgrid reload cost.
 */

#ifndef ASDR_BASELINE_NEUREX_HPP
#define ASDR_BASELINE_NEUREX_HPP

#include <string>

#include "core/trace.hpp"
#include "nerf/field.hpp"

namespace asdr::baseline {

struct NeurexConfig
{
    std::string name = "NeuRex-Server";
    double clock_hz = 1e9;
    int lookup_lanes = 64;      ///< on-chip encoding lookups per cycle
    double bank_inefficiency = 1.3; ///< SRAM bank-conflict overhead
    int systolic_dim = 128;     ///< MLP array edge
    double systolic_util = 0.7;
    int subgrid_count = 512;    ///< 8^3 partitions
    double shard_bytes = 128e3; ///< per-subgrid hash shard
    double dram_bw = 100e9;
    double power_w = 7.5;
    double reload_factor = 1.5; ///< average reloads per subgrid per frame

    static NeurexConfig server();
    static NeurexConfig edge();
};

struct NeurexReport
{
    std::string name;
    double enc_seconds = 0.0;
    double mlp_seconds = 0.0;
    double seconds = 0.0;
    double energy_j = 0.0;
};

class NeurexModel
{
  public:
    explicit NeurexModel(const NeurexConfig &cfg) : cfg_(cfg) {}

    const NeurexConfig &config() const { return cfg_; }

    NeurexReport run(const core::WorkloadProfile &profile,
                     const nerf::FieldCosts &costs) const;

  private:
    NeurexConfig cfg_;
};

} // namespace asdr::baseline

#endif // ASDR_BASELINE_NEUREX_HPP
