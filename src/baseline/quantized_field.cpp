#include "baseline/quantized_field.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace asdr::baseline {

QuantizedField::QuantizedField(const nerf::RadianceField &inner,
                               int color_bits, float sigma_step)
    : inner_(inner), color_scale_(float(1 << color_bits)),
      sigma_step_(sigma_step)
{
    ASDR_ASSERT(color_bits >= 1 && color_bits <= 16, "bad color bits");
    ASDR_ASSERT(sigma_step >= 0.0f, "bad sigma step");
}

nerf::DensityOutput
QuantizedField::density(const Vec3 &pos) const
{
    nerf::DensityOutput den = inner_.density(pos);
    if (sigma_step_ > 0.0f)
        den.sigma = std::round(den.sigma / sigma_step_) * sigma_step_;
    return den;
}

Vec3
QuantizedField::color(const Vec3 &pos, const Vec3 &dir,
                      const nerf::DensityOutput &den) const
{
    Vec3 c = inner_.color(pos, dir, den);
    auto q = [&](float v) {
        return std::round(v * color_scale_) / color_scale_;
    };
    return {q(c.x), q(c.y), q(c.z)};
}

void
QuantizedField::densityBatch(const Vec3 *pos, int count,
                             nerf::DensityOutput *out) const
{
    inner_.densityBatch(pos, count, out);
    if (sigma_step_ > 0.0f)
        for (int p = 0; p < count; ++p)
            out[p].sigma =
                std::round(out[p].sigma / sigma_step_) * sigma_step_;
}

void
QuantizedField::colorBatch(const Vec3 *pos, const Vec3 &dir,
                           const nerf::DensityOutput *den, int count,
                           Vec3 *out) const
{
    inner_.colorBatch(pos, dir, den, count, out);
    auto q = [&](float v) {
        return std::round(v * color_scale_) / color_scale_;
    };
    for (int p = 0; p < count; ++p)
        out[p] = {q(out[p].x), q(out[p].y), q(out[p].z)};
}

void
QuantizedField::traceLookups(const Vec3 &pos, nerf::LookupSink &sink) const
{
    inner_.traceLookups(pos, sink);
}

nerf::TableSchema
QuantizedField::tableSchema() const
{
    return inner_.tableSchema();
}

nerf::FieldCosts
QuantizedField::costs() const
{
    return inner_.costs();
}

std::string
QuantizedField::describe() const
{
    return "Quantized(" + inner_.describe() + ")";
}

} // namespace asdr::baseline
