#include "image/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/logging.hpp"

namespace asdr {

namespace {

void
checkSameSize(const Image &a, const Image &b)
{
    ASDR_ASSERT(a.width() == b.width() && a.height() == b.height(),
                "metric inputs must have identical dimensions");
    ASDR_ASSERT(!a.empty(), "metric inputs must be non-empty");
}

/** Per-channel grayscale views for the window-based metrics. */
std::vector<float>
channel(const Image &img, int c)
{
    std::vector<float> out(img.pixels());
    for (size_t i = 0; i < img.pixels(); ++i)
        out[i] = img.data()[i][int(c)];
    return out;
}

std::vector<float>
luminance(const Image &img)
{
    std::vector<float> out(img.pixels());
    for (size_t i = 0; i < img.pixels(); ++i) {
        const Vec3 &p = img.data()[i];
        out[i] = 0.2126f * p.x + 0.7152f * p.y + 0.0722f * p.z;
    }
    return out;
}

/** 2x box downsample (used by the multi-scale perceptual metric). */
Image
downsample2(const Image &img)
{
    int w = std::max(1, img.width() / 2);
    int h = std::max(1, img.height() / 2);
    Image out(w, h);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            int x0 = std::min(2 * x, img.width() - 1);
            int x1 = std::min(2 * x + 1, img.width() - 1);
            int y0 = std::min(2 * y, img.height() - 1);
            int y1 = std::min(2 * y + 1, img.height() - 1);
            out.at(x, y) = (img.at(x0, y0) + img.at(x1, y0) +
                            img.at(x0, y1) + img.at(x1, y1)) * 0.25f;
        }
    }
    return out;
}

/** Sobel gradient magnitude of a grayscale field. */
std::vector<float>
gradientMagnitude(const std::vector<float> &g, int w, int h)
{
    std::vector<float> out(g.size(), 0.0f);
    auto px = [&](int x, int y) {
        x = std::clamp(x, 0, w - 1);
        y = std::clamp(y, 0, h - 1);
        return g[size_t(y) * w + x];
    };
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            float gx = (px(x + 1, y - 1) + 2 * px(x + 1, y) + px(x + 1, y + 1)) -
                       (px(x - 1, y - 1) + 2 * px(x - 1, y) + px(x - 1, y + 1));
            float gy = (px(x - 1, y + 1) + 2 * px(x, y + 1) + px(x + 1, y + 1)) -
                       (px(x - 1, y - 1) + 2 * px(x, y - 1) + px(x + 1, y - 1));
            out[size_t(y) * w + x] = std::sqrt(gx * gx + gy * gy);
        }
    }
    return out;
}

} // namespace

double
mse(const Image &a, const Image &b)
{
    checkSameSize(a, b);
    double acc = 0.0;
    for (size_t i = 0; i < a.pixels(); ++i) {
        Vec3 d = a.data()[i] - b.data()[i];
        acc += double(d.x) * d.x + double(d.y) * d.y + double(d.z) * d.z;
    }
    return acc / (double(a.pixels()) * 3.0);
}

double
psnr(const Image &a, const Image &b, double cap)
{
    double m = mse(a, b);
    if (m <= 0.0)
        return cap;
    return std::min(cap, 10.0 * std::log10(1.0 / m));
}

double
ssim(const Image &a, const Image &b)
{
    checkSameSize(a, b);
    const int w = a.width(), h = a.height();
    const int win = 11, half = win / 2;
    const double sigma = 1.5;
    const double c1 = 0.01 * 0.01, c2 = 0.03 * 0.03;

    // Precompute the gaussian window.
    double kernel[11][11];
    double ksum = 0.0;
    for (int i = 0; i < win; ++i) {
        for (int j = 0; j < win; ++j) {
            double dx = i - half, dy = j - half;
            kernel[i][j] = std::exp(-(dx * dx + dy * dy) / (2 * sigma * sigma));
            ksum += kernel[i][j];
        }
    }
    for (int i = 0; i < win; ++i)
        for (int j = 0; j < win; ++j)
            kernel[i][j] /= ksum;

    double total = 0.0;
    int channels = 0;
    for (int c = 0; c < 3; ++c) {
        std::vector<float> ga = channel(a, c), gb = channel(b, c);
        auto px = [&](const std::vector<float> &g, int x, int y) {
            x = std::clamp(x, 0, w - 1);
            y = std::clamp(y, 0, h - 1);
            return double(g[size_t(y) * w + x]);
        };
        double acc = 0.0;
        long count = 0;
        // Stride 2 keeps the metric O(pixels) cheap without changing the
        // value materially (windows overlap heavily at stride 1).
        for (int y = 0; y < h; y += 2) {
            for (int x = 0; x < w; x += 2) {
                double mu_a = 0, mu_b = 0;
                for (int i = 0; i < win; ++i)
                    for (int j = 0; j < win; ++j) {
                        mu_a += kernel[i][j] * px(ga, x + j - half, y + i - half);
                        mu_b += kernel[i][j] * px(gb, x + j - half, y + i - half);
                    }
                double va = 0, vb = 0, cov = 0;
                for (int i = 0; i < win; ++i)
                    for (int j = 0; j < win; ++j) {
                        double da = px(ga, x + j - half, y + i - half) - mu_a;
                        double db = px(gb, x + j - half, y + i - half) - mu_b;
                        va += kernel[i][j] * da * da;
                        vb += kernel[i][j] * db * db;
                        cov += kernel[i][j] * da * db;
                    }
                double s = ((2 * mu_a * mu_b + c1) * (2 * cov + c2)) /
                           ((mu_a * mu_a + mu_b * mu_b + c1) * (va + vb + c2));
                acc += s;
                ++count;
            }
        }
        total += acc / double(count);
        ++channels;
    }
    return total / double(channels);
}

double
perceptualDistance(const Image &a, const Image &b)
{
    checkSameSize(a, b);
    Image ca = a, cb = b;
    double total = 0.0;
    double weight_sum = 0.0;
    const double scale_weights[3] = {0.5, 0.3, 0.2};
    for (int scale = 0; scale < 3; ++scale) {
        int w = ca.width(), h = ca.height();
        std::vector<float> la = luminance(ca), lb = luminance(cb);
        std::vector<float> gma = gradientMagnitude(la, w, h);
        std::vector<float> gmb = gradientMagnitude(lb, w, h);

        // Gradient dissimilarity (edges appearing/disappearing) plus a
        // contrast-normalized color term; both bounded in [0, 1].
        double acc = 0.0;
        const double eps = 1e-3;
        for (size_t i = 0; i < la.size(); ++i) {
            double g_sim = (2.0 * gma[i] * gmb[i] + eps) /
                           (double(gma[i]) * gma[i] + double(gmb[i]) * gmb[i] +
                            eps);
            Vec3 d = ca.data()[i] - cb.data()[i];
            double col = std::min(1.0, double(length(d)));
            acc += 0.7 * (1.0 - g_sim) + 0.3 * col;
        }
        total += scale_weights[scale] * acc / double(la.size());
        weight_sum += scale_weights[scale];
        if (w <= 8 || h <= 8)
            break;
        ca = downsample2(ca);
        cb = downsample2(cb);
    }
    return total / weight_sum;
}

} // namespace asdr
