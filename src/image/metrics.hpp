/**
 * @file
 * Image quality metrics used throughout the evaluation:
 *  - PSNR (primary metric, Figs. 7/9/16/21, Tables 3/4)
 *  - SSIM with a gaussian window (Table 3/4)
 *  - a multi-scale perceptual distance standing in for LPIPS (Table 3/4);
 *    no pretrained network is available offline, so we use a hand-crafted
 *    gradient+structure distance with the same "lower is better" range.
 */

#ifndef ASDR_IMAGE_METRICS_HPP
#define ASDR_IMAGE_METRICS_HPP

#include "image/image.hpp"

namespace asdr {

/** Mean squared error over all channels. */
double mse(const Image &a, const Image &b);

/** Peak signal-to-noise ratio in dB; peak = 1.0. Identical images
 *  saturate at `cap` dB (default 99) instead of infinity. */
double psnr(const Image &a, const Image &b, double cap = 99.0);

/**
 * Structural similarity index, computed per channel on gaussian-weighted
 * 11x11 windows (sigma 1.5, K1=0.01, K2=0.03) and averaged.
 */
double ssim(const Image &a, const Image &b);

/**
 * LPIPS stand-in: multi-scale (3 octaves) distance combining local
 * luminance-normalized gradient dissimilarity and color difference.
 * 0 for identical images; typical range 0.01-0.3 for renderings.
 */
double perceptualDistance(const Image &a, const Image &b);

} // namespace asdr

#endif // ASDR_IMAGE_METRICS_HPP
