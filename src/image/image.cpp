#include "image/image.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/logging.hpp"

namespace asdr {

Image::Image(int width, int height, Vec3 fill)
    : width_(width), height_(height),
      data_(size_t(width) * size_t(height), fill)
{
    ASDR_ASSERT(width > 0 && height > 0, "image dimensions must be positive");
}

Vec3
Image::sampleBilinear(float x, float y) const
{
    x = std::clamp(x, 0.0f, float(width_ - 1));
    y = std::clamp(y, 0.0f, float(height_ - 1));
    int x0 = static_cast<int>(x);
    int y0 = static_cast<int>(y);
    int x1 = std::min(x0 + 1, width_ - 1);
    int y1 = std::min(y0 + 1, height_ - 1);
    float fx = x - float(x0);
    float fy = y - float(y0);
    Vec3 top = lerp(at(x0, y0), at(x1, y0), fx);
    Vec3 bot = lerp(at(x0, y1), at(x1, y1), fx);
    return lerp(top, bot, fy);
}

void
Image::clamp()
{
    for (auto &p : data_)
        p = clamp01(p);
}

bool
Image::writePpm(const std::string &path, bool gamma) const
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        warn("cannot open ", path, " for writing");
        return false;
    }
    std::fprintf(f, "P6\n%d %d\n255\n", width_, height_);
    std::vector<unsigned char> row(size_t(width_) * 3);
    for (int y = 0; y < height_; ++y) {
        for (int x = 0; x < width_; ++x) {
            Vec3 c = clamp01(at(x, y));
            float g = gamma ? 1.0f / 2.2f : 1.0f;
            row[size_t(x) * 3 + 0] =
                static_cast<unsigned char>(std::pow(c.x, g) * 255.0f + 0.5f);
            row[size_t(x) * 3 + 1] =
                static_cast<unsigned char>(std::pow(c.y, g) * 255.0f + 0.5f);
            row[size_t(x) * 3 + 2] =
                static_cast<unsigned char>(std::pow(c.z, g) * 255.0f + 0.5f);
        }
        std::fwrite(row.data(), 1, row.size(), f);
    }
    std::fclose(f);
    return true;
}

double
Image::meanLuminance() const
{
    double sum = 0.0;
    for (const auto &p : data_)
        sum += (p.x + p.y + p.z) / 3.0;
    return data_.empty() ? 0.0 : sum / double(data_.size());
}

Image
heatmap(const std::vector<float> &values, int width, int height, float lo,
        float hi)
{
    ASDR_ASSERT(values.size() == size_t(width) * size_t(height),
                "heatmap size mismatch");
    Image img(width, height);
    float range = std::max(hi - lo, 1e-9f);
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            float t = std::clamp(
                (values[size_t(y) * width + x] - lo) / range, 0.0f, 1.0f);
            // blue (cold, few samples) -> green -> red (hot, many samples)
            Vec3 c;
            if (t < 0.5f)
                c = lerp(Vec3(0.1f, 0.2f, 0.9f), Vec3(0.2f, 0.9f, 0.3f),
                         t * 2.0f);
            else
                c = lerp(Vec3(0.2f, 0.9f, 0.3f), Vec3(0.95f, 0.15f, 0.1f),
                         (t - 0.5f) * 2.0f);
            img.at(x, y) = c;
        }
    }
    return img;
}

Image
upscaleBilinear(const Image &src, int width, int height)
{
    ASDR_ASSERT(width > 0 && height > 0, "bad upscale resolution");
    if (src.width() == width && src.height() == height)
        return src;
    Image out(width, height);
    const float sx = float(src.width()) / float(width);
    const float sy = float(src.height()) / float(height);
    for (int y = 0; y < height; ++y) {
        const float v = (float(y) + 0.5f) * sy - 0.5f;
        for (int x = 0; x < width; ++x) {
            const float u = (float(x) + 0.5f) * sx - 0.5f;
            out.at(x, y) = src.sampleBilinear(u, v);
        }
    }
    return out;
}

} // namespace asdr
