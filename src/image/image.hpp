/**
 * @file
 * Linear-RGB float image buffer with PPM export, plus helpers for the
 * sample-count heatmaps of Fig. 7 (blue = few samples, red = many).
 */

#ifndef ASDR_IMAGE_IMAGE_HPP
#define ASDR_IMAGE_IMAGE_HPP

#include <string>
#include <vector>

#include "util/vec.hpp"

namespace asdr {

/** Row-major float RGB image; values nominally in [0, 1]. */
class Image
{
  public:
    Image() = default;
    Image(int width, int height, Vec3 fill = Vec3(0.0f));

    int width() const { return width_; }
    int height() const { return height_; }
    size_t pixels() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    Vec3 &at(int x, int y) { return data_[size_t(y) * width_ + x]; }
    const Vec3 &at(int x, int y) const { return data_[size_t(y) * width_ + x]; }

    const std::vector<Vec3> &data() const { return data_; }
    std::vector<Vec3> &data() { return data_; }

    /** Bilinearly sample at fractional pixel coordinates (clamped). */
    Vec3 sampleBilinear(float x, float y) const;

    /** Clamp all channels into [0, 1]. */
    void clamp();

    /** Write binary PPM (P6), applying gamma 2.2 for viewability. */
    bool writePpm(const std::string &path, bool gamma = true) const;

    /** Mean of all pixel channels (quick sanity statistic). */
    double meanLuminance() const;

  private:
    int width_ = 0;
    int height_ = 0;
    std::vector<Vec3> data_;
};

/**
 * Map a scalar field (e.g. per-pixel sample counts) to a blue→red heatmap
 * image, normalizing to [lo, hi]; used for the Fig. 7 visualization.
 */
Image heatmap(const std::vector<float> &values, int width, int height,
              float lo, float hi);

/**
 * Resample `src` to width x height with bilinear filtering (pixel
 * centers aligned, the standard half-texel mapping). The client side
 * of the serving quality ladder's ReducedResolution rung: the server
 * renders small, the receiver upscales back to the requested size.
 * Returns `src` unchanged when the dims already match.
 */
Image upscaleBilinear(const Image &src, int width, int height);

} // namespace asdr

#endif // ASDR_IMAGE_IMAGE_HPP
