/**
 * @file
 * Register-based cache (paper §5.2.2): per embedding table, a handful of
 * registers hold the most recently fetched entries; every generated
 * address is compared against all of them in parallel (all-to-all
 * comparison circuit), and hits bypass the memory crossbars entirely.
 * LRU replacement.
 */

#ifndef ASDR_SIM_REGISTER_CACHE_HPP
#define ASDR_SIM_REGISTER_CACHE_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace asdr::sim {

/** One table's register cache. */
class RegisterCache
{
  public:
    /** capacity == 0 disables the cache (every access misses). */
    explicit RegisterCache(int capacity);

    /**
     * Look up `key`; on miss the entry is filled (evicting the LRU
     * entry when full). @return true on hit
     */
    bool access(uint32_t key);

    /** Hit test without side effects. */
    bool contains(uint32_t key) const;

    int capacity() const { return capacity_; }
    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }
    double hitRate() const;
    void reset();

  private:
    int capacity_;
    // MRU-first order; tiny capacities make linear search the right
    // structure (it is also what the comparison circuit does).
    std::vector<uint32_t> entries_;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
};

/** The per-table cache bank of the encoding engine. */
class RegisterCacheBank
{
  public:
    RegisterCacheBank(int tables, int entries_per_table);

    /**
     * Per-table capacities (paper §5.2.2: "cache sizes vary for
     * different resolution embedded tables based on the locality of
     * sampling points"). `capacities` may be shorter than the table
     * count; missing entries reuse the last value.
     */
    explicit RegisterCacheBank(const std::vector<int> &capacities,
                               int tables);

    bool access(int table, uint32_t key);
    const RegisterCache &table(int t) const { return caches_.at(size_t(t)); }
    double overallHitRate() const;
    /** Total registers across all tables (the Table 2 budget). */
    int totalEntries() const;
    void reset();

  private:
    std::vector<RegisterCache> caches_;
};

} // namespace asdr::sim

#endif // ASDR_SIM_REGISTER_CACHE_HPP
