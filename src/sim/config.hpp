/**
 * @file
 * Accelerator configuration (paper Table 2). Two sizing points --
 * ASDR-Server and ASDR-Edge -- plus the hardware-variant axis of §6.9
 * (ReRAM CIM / SRAM CIM / SRAM + systolic array) and the ablation knobs
 * of §6.4 (mapping mode, cache, batch width).
 */

#ifndef ASDR_SIM_CONFIG_HPP
#define ASDR_SIM_CONFIG_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace asdr::sim {

/** Datapath used by the MLP engine. */
enum class MlpBackend { ReramCim, SramCim, Systolic };

/** Storage technology of the encoding-engine memory crossbars. */
enum class MemBackend { Reram, Sram };

/** Embedding-table placement strategy (§5.2.1). */
enum class MappingMode {
    HashOnly, ///< every table stored via its software index (strawman)
    Hybrid    ///< dense low-res tables de-hashed, bit-reordered, replicated
};

struct AccelConfig
{
    std::string name = "ASDR-Server";
    double clock_ghz = 1.0; ///< TSMC 28 nm synthesis point of the paper

    // --- Encoding engine ---
    int ag_lanes = 64;              ///< addresses generated per cycle
    bool cache_enabled = true;
    int cache_entries_per_table = 8; ///< Fig. 22 sweet spot
    /**
     * Optional per-table capacities, coarse level first (paper §5.2.2:
     * sizes vary with per-level locality). Empty = uniform
     * cache_entries_per_table. Shorter than the table count = last
     * value repeats.
     */
    std::vector<int> cache_profile;
    MappingMode mapping = MappingMode::Hybrid;
    MemBackend mem_backend = MemBackend::Reram;
    int fusion_units = 32; ///< level-interpolations per cycle
    /** Independent IO groups per hashed table (hybrid mapping). */
    int hashed_ports = 8;
    /** Upper bound on a de-hashed table's ports (replicas x groups). */
    int dense_port_cap = 64;

    // --- MLP engine ---
    MlpBackend mlp_backend = MlpBackend::ReramCim;
    int density_pipelines = 4;
    int color_pipelines = 4;
    int act_bits = 8;    ///< bit-serial input stream length
    int weight_bits = 8;
    int adc_bits = 5;
    int xbar_dim = 64;   ///< crossbar rows/cols
    int systolic_dim = 64; ///< systolic array edge (SA variant)

    // --- Volume rendering engine ---
    int approx_units = 16;
    int rgb_units = 8;
    int adaptive_sample_units = 8;

    // --- Memory crossbars ---
    int entry_bits = 16;       ///< stored feature vector width (2 x fp8)
    int xbar_row_bits = 64;    ///< one row readable per cycle
    int xbar_rows = 64;
    /** Points accumulated before a pipeline flush (batch width). */
    int batch_points = 16;

    int entriesPerRow() const { return xbar_row_bits / entry_bits; }
    int entriesPerBank() const { return entriesPerRow() * xbar_rows; }

    static AccelConfig server();
    static AccelConfig edge();
    /** Basic CIM design of §6.4: hash-only mapping, no register cache. */
    static AccelConfig strawman(bool edge_scale);
    /** Apply the §6.9 hardware-variant axis to a base config. */
    static AccelConfig withVariant(AccelConfig base, MlpBackend mlp,
                                   MemBackend mem);
};

} // namespace asdr::sim

#endif // ASDR_SIM_CONFIG_HPP
