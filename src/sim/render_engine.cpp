#include "sim/render_engine.hpp"

namespace asdr::sim {

RenderEngine::RenderEngine(const AccelConfig &cfg)
    : cfg_(cfg),
      energy_(EnergyParams::forBackend(cfg.mem_backend, cfg.mlp_backend))
{
}

RenderEngineReport
RenderEngine::finish() const
{
    RenderEngineReport report;
    report.composited_points = points_;
    report.approx_colors = approx_;
    report.probe_evaluations = probe_ops_;

    // Each unit retires one operation per cycle; the three unit groups
    // run concurrently.
    uint64_t rgb_cycles =
        (points_ + uint64_t(cfg_.rgb_units) - 1) / uint64_t(cfg_.rgb_units);
    uint64_t approx_cycles = (approx_ + uint64_t(cfg_.approx_units) - 1) /
                             uint64_t(cfg_.approx_units);
    uint64_t as_cycles =
        (probe_ops_ + uint64_t(cfg_.adaptive_sample_units) - 1) /
        uint64_t(cfg_.adaptive_sample_units);
    report.cycles = rgb_cycles;
    if (approx_cycles > report.cycles)
        report.cycles = approx_cycles;
    if (as_cycles > report.cycles)
        report.cycles = as_cycles;

    // Compositing: alpha computation + weighted accumulate, 3 channels.
    report.energy_pj += double(points_) * 8.0 * energy_.render_op;
    // Interpolation: one lerp per channel.
    report.energy_pj += double(approx_) * 6.0 * energy_.render_op;
    // Difficulty metric: subtract + compare tree per candidate.
    report.energy_pj += double(probe_ops_) * 6.0 * energy_.render_op;
    return report;
}

void
RenderEngine::reset()
{
    points_ = 0;
    approx_ = 0;
    probe_ops_ = 0;
}

} // namespace asdr::sim
