/**
 * @file
 * Cycle-level model of the volume rendering engine (paper §5.4):
 * approximation unit (linear color interpolation), RGB computation unit
 * (Eq. 1 compositing), and adaptive sampling unit (Eq. 3 subtract/
 * compare trees for probe rays).
 */

#ifndef ASDR_SIM_RENDER_ENGINE_HPP
#define ASDR_SIM_RENDER_ENGINE_HPP

#include <cstdint>

#include "sim/config.hpp"
#include "sim/tech_params.hpp"

namespace asdr::sim {

struct RenderEngineReport
{
    uint64_t cycles = 0;
    double energy_pj = 0.0;
    uint64_t composited_points = 0;
    uint64_t approx_colors = 0;
    uint64_t probe_evaluations = 0;
};

class RenderEngine
{
  public:
    explicit RenderEngine(const AccelConfig &cfg);

    void onPointComposited() { ++points_; }
    void onApproxColor() { ++approx_; }
    /** One probe ray's difficulty evaluation (all candidates). */
    void onProbeEvaluation(int candidates) { probe_ops_ += uint64_t(candidates); }

    RenderEngineReport finish() const;
    void reset();

  private:
    AccelConfig cfg_;
    EnergyParams energy_;
    uint64_t points_ = 0;
    uint64_t approx_ = 0;
    uint64_t probe_ops_ = 0;
};

} // namespace asdr::sim

#endif // ASDR_SIM_RENDER_ENGINE_HPP
