/**
 * @file
 * Cycle-level model of the MLP engine (paper §5.3): density and color
 * sub-engines built from CIM PEs (64x64 crossbars with MAC capability).
 *
 * CIM mapping: a layer of shape in x out occupies ceil(in/64) block
 * rows and ceil(out * weight_bits / 64) block columns. Inputs stream
 * bit-serially (act_bits cycles); partial sums across block rows
 * accumulate digitally, so one execution occupies a pipeline for
 *   act_bits * ceil(in/64)
 * cycles at its slowest layer; layers are pipelined, and each
 * sub-engine has `pipelines` independent PE groups. The color path is
 * skippable (the decoupling optimization simply issues fewer color
 * executions).
 *
 * The systolic-array variant (§6.9) processes macs at dim^2 MACs/cycle
 * with a fixed utilization factor instead.
 */

#ifndef ASDR_SIM_MLP_ENGINE_HPP
#define ASDR_SIM_MLP_ENGINE_HPP

#include <cstdint>
#include <vector>

#include "nerf/field.hpp"
#include "sim/config.hpp"
#include "sim/tech_params.hpp"

namespace asdr::sim {

/** Cycle/energy totals of one sub-engine for a frame. */
struct MlpReport
{
    uint64_t density_cycles = 0;
    uint64_t color_cycles = 0;
    double density_energy_pj = 0.0;
    double color_energy_pj = 0.0;
    uint64_t density_execs = 0;
    uint64_t color_execs = 0;

    uint64_t cycles() const
    {
        // Sub-engines run concurrently; the engine is bound by the
        // slower of the two.
        return density_cycles > color_cycles ? density_cycles
                                             : color_cycles;
    }
    double energyPj() const { return density_energy_pj + color_energy_pj; }
};

class MlpEngine
{
  public:
    MlpEngine(const nerf::FieldCosts &costs, const AccelConfig &cfg);

    void onDensityExec() { ++density_execs_; }
    void onColorExec() { ++color_execs_; }

    MlpReport finish() const;
    void reset();

    /** Pipeline-occupancy cycles of one execution of `layers`. */
    uint64_t cyclesPerExec(const std::vector<nerf::LayerShape> &layers) const;
    /** Dynamic energy of one execution of `layers` (pJ). */
    double energyPerExec(const std::vector<nerf::LayerShape> &layers) const;

  private:
    nerf::FieldCosts costs_;
    AccelConfig cfg_;
    EnergyParams energy_;
    LatencyParams latency_;
    uint64_t density_execs_ = 0;
    uint64_t color_execs_ = 0;
};

} // namespace asdr::sim

#endif // ASDR_SIM_MLP_ENGINE_HPP
