#include "sim/mlp_engine.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace asdr::sim {

MlpEngine::MlpEngine(const nerf::FieldCosts &costs, const AccelConfig &cfg)
    : costs_(costs), cfg_(cfg),
      energy_(EnergyParams::forBackend(cfg.mem_backend, cfg.mlp_backend)),
      latency_(LatencyParams::forBackend(cfg.mem_backend, cfg.mlp_backend))
{
}

uint64_t
MlpEngine::cyclesPerExec(const std::vector<nerf::LayerShape> &layers) const
{
    if (layers.empty())
        return 1; // e.g. TensoRF's rank-reduction "density network"

    if (cfg_.mlp_backend == MlpBackend::Systolic) {
        // Weight-stationary systolic array: throughput-bound at
        // dim^2 MACs/cycle with imperfect utilization on small layers.
        double macs = 0.0;
        for (const auto &l : layers)
            macs += double(l.in) * double(l.out);
        double util = 0.22; // small NeRF layers leave much of the array idle
        double tput = double(cfg_.systolic_dim) * double(cfg_.systolic_dim) *
                      util;
        return uint64_t(std::ceil(macs / tput));
    }

    // CIM: the slowest layer bounds the pipeline's initiation interval.
    uint64_t worst = 1;
    for (const auto &l : layers) {
        uint64_t blocks_row =
            uint64_t((l.in + cfg_.xbar_dim - 1) / cfg_.xbar_dim);
        uint64_t c = uint64_t(
            std::ceil(double(cfg_.act_bits) * double(blocks_row) *
                      latency_.mvm_cycle_scale));
        worst = std::max(worst, c);
    }
    return worst;
}

double
MlpEngine::energyPerExec(const std::vector<nerf::LayerShape> &layers) const
{
    double e = 0.0;
    if (cfg_.mlp_backend == MlpBackend::Systolic) {
        for (const auto &l : layers)
            e += double(l.in) * double(l.out) * energy_.systolic_mac;
    } else {
        const int outputs_per_xbar =
            std::max(1, cfg_.xbar_dim / cfg_.weight_bits);
        for (const auto &l : layers) {
            double blocks =
                std::ceil(double(l.in) / cfg_.xbar_dim) *
                std::ceil(double(l.out) / outputs_per_xbar);
            e += blocks * double(cfg_.act_bits) * energy_.mvm_block_cycle;
        }
    }
    for (const auto &l : layers)
        e += double(l.out) * energy_.nonlinear_op;
    return e;
}

MlpReport
MlpEngine::finish() const
{
    MlpReport report;
    report.density_execs = density_execs_;
    report.color_execs = color_execs_;

    uint64_t den_ii = cyclesPerExec(costs_.density_layers);
    uint64_t col_ii = cyclesPerExec(costs_.color_layers);

    report.density_cycles =
        (density_execs_ * den_ii + uint64_t(cfg_.density_pipelines) - 1) /
        uint64_t(cfg_.density_pipelines);
    report.color_cycles =
        (color_execs_ * col_ii + uint64_t(cfg_.color_pipelines) - 1) /
        uint64_t(cfg_.color_pipelines);

    report.density_energy_pj =
        double(density_execs_) * energyPerExec(costs_.density_layers);
    report.color_energy_pj =
        double(color_execs_) * energyPerExec(costs_.color_layers);
    return report;
}

void
MlpEngine::reset()
{
    density_execs_ = 0;
    color_execs_ = 0;
}

} // namespace asdr::sim
