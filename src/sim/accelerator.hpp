/**
 * @file
 * Top-level ASDR accelerator model: wires the encoding engine, the MLP
 * engine and the volume rendering engine to the renderer's trace stream
 * and produces per-frame cycle/energy reports. The three engines form a
 * pipeline over points (paper Fig. 10), so frame latency is the slowest
 * engine's occupancy (throughput-bound pipeline model).
 */

#ifndef ASDR_SIM_ACCELERATOR_HPP
#define ASDR_SIM_ACCELERATOR_HPP

#include <memory>
#include <string>

#include "core/trace.hpp"
#include "sim/encoding_engine.hpp"
#include "sim/mlp_engine.hpp"
#include "sim/render_engine.hpp"

namespace asdr::sim {

/** One frame's simulated execution. */
struct SimReport
{
    std::string config_name;
    EncodingReport enc;
    MlpReport mlp;
    RenderEngineReport render;

    uint64_t total_cycles = 0;
    double seconds = 0.0;       ///< total_cycles / clock
    double enc_seconds = 0.0;   ///< encoding-phase occupancy
    double mlp_seconds = 0.0;   ///< MLP-phase occupancy
    double energy_j = 0.0;      ///< dynamic + static energy of the frame
    double dynamic_energy_j = 0.0;
    double static_energy_j = 0.0;
};

class AsdrAccelerator : public core::TraceSink
{
  public:
    /**
     * @param schema embedding tables of the model being served
     * @param costs  network shapes / per-op costs of that model
     * @param cfg    hardware configuration (Table 2 point + variant)
     * @param edge_scale charge Edge static power instead of Server
     */
    AsdrAccelerator(const nerf::TableSchema &schema,
                    const nerf::FieldCosts &costs, const AccelConfig &cfg,
                    bool edge_scale);

    // TraceSink interface
    void onFrameBegin(int width, int height) override;
    void onRayBegin(int px, int py, bool probe) override;
    void onPointLookups(const nerf::VertexLookup *lookups,
                        size_t count) override;
    void onDensityExec() override;
    void onColorExec() override;
    void onApproxColor() override;
    void onRayEnd() override;
    void onFrameEnd() override;

    /** Report for the last completed frame. */
    const SimReport &report() const { return report_; }

    const AccelConfig &config() const { return cfg_; }
    const EncodingEngine &encodingEngine() const { return enc_; }

  private:
    AccelConfig cfg_;
    bool edge_scale_;
    EncodingEngine enc_;
    MlpEngine mlp_;
    RenderEngine render_;
    EnergyParams energy_;
    bool in_probe_ray_ = false;
    uint64_t buffer_events_ = 0;
    SimReport report_;
};

} // namespace asdr::sim

#endif // ASDR_SIM_ACCELERATOR_HPP
