/**
 * @file
 * Embedding-table placement and address generation (paper §5.2.1).
 *
 * HashOnly (the baseline/strawman): every table occupies a full
 * hash-capacity region and is addressed by its software index; all of a
 * table's crossbars share one read port, so simultaneous reads
 * serialize (the paper's Fig. 3c conflict).
 *
 * Hybrid (ASDR): tables whose lattice fits the capacity are *de-hashed*
 * -- addressed by bit-reordered coordinates so the 8 voxel vertices
 * fall into different crossbar IO groups (Fig. 14b) -- and replicated
 * 2^k times with the copy ID in the high address bits (Fig. 12), which
 * multiplies the parallel read ports. Hashed tables are spread across
 * independent IO groups by their hash bits.
 */

#ifndef ASDR_SIM_ADDRESS_MAPPING_HPP
#define ASDR_SIM_ADDRESS_MAPPING_HPP

#include <cstdint>
#include <vector>

#include "nerf/field.hpp"
#include "sim/config.hpp"

namespace asdr::sim {

/** Physical location of one embedding entry. */
struct PhysAddr
{
    uint32_t table = 0; ///< read-conflict domain owner
    uint32_t port = 0;  ///< IO group within the table serving this read
    uint32_t bank = 0;  ///< crossbar id within the table (for stats)
};

class AddressMapping
{
  public:
    AddressMapping(const nerf::TableSchema &schema, const AccelConfig &cfg);

    int tables() const { return int(schema_.tables.size()); }

    /**
     * Map one lookup. `requester` (e.g. a rotating lane id) selects the
     * replica for de-hashed tables, spreading concurrent readers.
     */
    PhysAddr map(const nerf::VertexLookup &lu, uint32_t requester) const;

    /** Parallel read ports of table `t` under this mapping. */
    int ports(int t) const { return ports_[size_t(t)]; }

    /** Replicas of table `t` (1 unless de-hashed; Fig. 12). */
    int copies(int t) const { return copies_[size_t(t)]; }

    /** True when table `t` is stored de-hashed (dense + reordered). */
    bool dehashed(int t) const { return dehashed_[size_t(t)]; }

    /** Fraction of table `t`'s allocated capacity holding live data
     *  (Fig. 13; counts all replicas as live). */
    double storageUtilization(int t) const;
    double avgUtilization() const;

    /** Capacity allocated to each table, in entries. */
    uint32_t allocatedEntries(int t) const;

    /**
     * Fig. 14a's naive de-hash: plain coordinate concatenation. The 8
     * voxel vertices mostly share their high bits, landing in the same
     * crossbar. Exposed for the address-conflict experiment.
     */
    uint32_t naiveConcatIndex(int t, const Vec3i &v) const;

    /** Fig. 14b: bit-reordered index (low coordinate bits become the
     *  high address bits). */
    uint32_t bitReorderIndex(int t, const Vec3i &v) const;

  private:
    nerf::TableSchema schema_;
    AccelConfig cfg_;
    std::vector<int> copies_;
    std::vector<int> ports_;
    std::vector<char> dehashed_;
    std::vector<uint32_t> coord_bits_; ///< bits per axis for reorder
};

} // namespace asdr::sim

#endif // ASDR_SIM_ADDRESS_MAPPING_HPP
