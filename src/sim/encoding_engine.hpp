/**
 * @file
 * Cycle-level model of the encoding engine (paper §5.2): hybrid address
 * generator, register-based cache, memory crossbars, fusion unit.
 *
 * Points are processed in batches (a pipeline wavefront). Per batch the
 * engine's stages run concurrently, so the batch costs the maximum of:
 *   - address generation:  ceil(addresses / ag_lanes)
 *   - memory reads:        max over tables of
 *                          ceil(misses_t * read_cycles / ports_t)
 *   - fusion:              ceil(level-interpolations / fusion_units)
 * Cache hits bypass the memory crossbars; the hybrid mapping multiplies
 * a table's read ports (replication + bit reordering), which is exactly
 * how the paper's data-reuse microarchitecture removes conflicts.
 */

#ifndef ASDR_SIM_ENCODING_ENGINE_HPP
#define ASDR_SIM_ENCODING_ENGINE_HPP

#include <cstdint>
#include <vector>

#include "nerf/field.hpp"
#include "sim/address_mapping.hpp"
#include "sim/config.hpp"
#include "sim/register_cache.hpp"
#include "sim/tech_params.hpp"

namespace asdr::sim {

/** Cycle/energy totals of the encoding engine for one frame. */
struct EncodingReport
{
    uint64_t cycles = 0;
    double energy_pj = 0.0;
    uint64_t lookups = 0;
    uint64_t cache_hits = 0;
    uint64_t mem_reads = 0;
    uint64_t conflict_stall_cycles = 0; ///< memory cycles beyond 1/batch
    double cacheHitRate() const
    {
        return lookups ? double(cache_hits) / double(lookups) : 0.0;
    }
};

class EncodingEngine
{
  public:
    EncodingEngine(const nerf::TableSchema &schema, const AccelConfig &cfg);

    /** Feed one point's lookups (table-major, 8 per table-level). */
    void onPointLookups(const nerf::VertexLookup *lookups, size_t count);

    /** Flush the pending partial batch and return the frame report. */
    EncodingReport finish();

    void reset();

    const RegisterCacheBank &cacheBank() const { return caches_; }
    const AddressMapping &mapping() const { return mapping_; }

  private:
    void flushBatch();

    AccelConfig cfg_;
    AddressMapping mapping_;
    RegisterCacheBank caches_;
    EnergyParams energy_;
    LatencyParams latency_;

    // Current batch state.
    int batch_points_ = 0;
    uint64_t batch_addrs_ = 0;
    uint64_t batch_fusion_ops_ = 0;
    std::vector<uint32_t> batch_port_load_; ///< per (table, port) reads
    std::vector<uint32_t> touched_ports_;
    uint32_t requester_rr_ = 0; ///< rotating replica selector

    // Per-table port-load bookkeeping layout.
    std::vector<uint32_t> port_base_;

    EncodingReport report_;
};

} // namespace asdr::sim

#endif // ASDR_SIM_ENCODING_ENGINE_HPP
