#include "sim/address_mapping.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace asdr::sim {

namespace {

uint32_t
pow2Floor(uint32_t v)
{
    uint32_t p = 1;
    while (p * 2 <= v)
        p *= 2;
    return p;
}

uint32_t
pow2Ceil(uint32_t v)
{
    uint32_t p = 1;
    while (p < v)
        p *= 2;
    return p;
}

uint32_t
bitsFor(uint32_t v)
{
    uint32_t b = 0;
    while ((1u << b) < v)
        ++b;
    return b;
}

} // namespace

AddressMapping::AddressMapping(const nerf::TableSchema &schema,
                               const AccelConfig &cfg)
    : schema_(schema), cfg_(cfg)
{
    const size_t n = schema_.tables.size();
    ASDR_ASSERT(n > 0, "schema has no tables");
    copies_.resize(n, 1);
    ports_.resize(n, 1);
    dehashed_.resize(n, 0);
    coord_bits_.resize(n, 0);

    for (size_t t = 0; t < n; ++t) {
        const nerf::TableInfo &info = schema_.tables[t];
        uint32_t allocated = allocatedEntries(int(t));
        coord_bits_[t] = bitsFor(uint32_t(std::max(info.verts_per_axis, 2)));

        if (cfg_.mapping == MappingMode::Hybrid && info.dense) {
            dehashed_[t] = 1;
            copies_[t] = int(std::max(1u, pow2Floor(allocated / std::max(
                                                         info.entries, 1u))));
            // Bit reordering spreads the 8 voxel vertices over the IO
            // groups; each replica adds an independent group set.
            ports_[t] = std::min(cfg_.dense_port_cap,
                                 cfg_.hashed_ports * copies_[t]);
        } else if (cfg_.mapping == MappingMode::Hybrid) {
            // Hash bits select among the independent IO groups.
            ports_[t] = cfg_.hashed_ports;
        } else {
            // Baseline: all of a table's crossbars share one read port
            // (paper Fig. 3c).
            ports_[t] = 1;
        }
    }
}

uint32_t
AddressMapping::allocatedEntries(int t) const
{
    const nerf::TableInfo &info = schema_.tables[size_t(t)];
    if (schema_.hash_table_entries > 0)
        return schema_.hash_table_entries;
    return pow2Ceil(std::max(info.entries, 1u));
}

PhysAddr
AddressMapping::map(const nerf::VertexLookup &lu, uint32_t requester) const
{
    const int t = lu.level;
    const nerf::TableInfo &info = schema_.tables[size_t(t)];
    PhysAddr out;
    out.table = uint32_t(t);

    const uint32_t entries_per_bank = uint32_t(cfg_.entriesPerBank());

    if (dehashed_[size_t(t)]) {
        uint32_t reo = bitReorderIndex(t, lu.vertex);
        uint32_t copy = requester % uint32_t(copies_[size_t(t)]);
        uint32_t stride =
            allocatedEntries(t) / uint32_t(copies_[size_t(t)]);
        uint32_t phys = copy * stride + (reo % std::max(stride, 1u));
        out.bank = phys / entries_per_bank;
        uint32_t groups_per_copy =
            std::max(1u, uint32_t(ports_[size_t(t)]) /
                             std::min(8u, uint32_t(ports_[size_t(t)])));
        (void)groups_per_copy;
        // Port: the interleaved low coordinate bits pick one of 8 IO
        // groups; the replica extends the group id.
        uint32_t low3 = uint32_t(lu.vertex.x & 1) |
                        (uint32_t(lu.vertex.y & 1) << 1) |
                        (uint32_t(lu.vertex.z & 1) << 2);
        out.port = (low3 + uint32_t(cfg_.hashed_ports) * copy) %
                   uint32_t(ports_[size_t(t)]);
    } else {
        out.bank = lu.index / entries_per_bank;
        out.port = lu.index % uint32_t(ports_[size_t(t)]);
    }
    (void)info;
    return out;
}

double
AddressMapping::storageUtilization(int t) const
{
    const nerf::TableInfo &info = schema_.tables[size_t(t)];
    double allocated = double(allocatedEntries(t));
    if (dehashed_[size_t(t)])
        return std::min(1.0, double(copies_[size_t(t)]) *
                                 double(info.entries) / allocated);
    if (cfg_.mapping == MappingMode::HashOnly || !info.dense) {
        // A hashed table only ever touches as many entries as the level
        // has lattice vertices (paper Fig. 13a).
        return std::min(1.0, double(info.entries) / allocated);
    }
    return std::min(1.0, double(info.entries) / allocated);
}

double
AddressMapping::avgUtilization() const
{
    double sum = 0.0;
    for (int t = 0; t < tables(); ++t)
        sum += storageUtilization(t);
    return sum / double(tables());
}

uint32_t
AddressMapping::naiveConcatIndex(int t, const Vec3i &v) const
{
    uint32_t b = coord_bits_[size_t(t)];
    uint32_t mask = (1u << b) - 1u;
    return ((uint32_t(v.z) & mask) << (2 * b)) |
           ((uint32_t(v.y) & mask) << b) | (uint32_t(v.x) & mask);
}

uint32_t
AddressMapping::bitReorderIndex(int t, const Vec3i &v) const
{
    const nerf::TableInfo &info = schema_.tables[size_t(t)];
    uint32_t b = coord_bits_[size_t(t)];
    int dims = info.dims;
    // Interleave coordinate bits LSB-first (Morton), then reverse the
    // whole field so low coordinate bits become the high address bits.
    uint32_t total_bits = b * uint32_t(dims);
    uint32_t morton = 0;
    uint32_t out_bit = 0;
    const int32_t coords[3] = {v.x, v.y, v.z};
    for (uint32_t i = 0; i < b; ++i)
        for (int a = 0; a < dims; ++a)
            morton |= ((uint32_t(coords[a]) >> i) & 1u) << out_bit++;
    uint32_t reversed = 0;
    for (uint32_t i = 0; i < total_bits; ++i)
        if (morton & (1u << i))
            reversed |= 1u << (total_bits - 1 - i);
    return reversed;
}

} // namespace asdr::sim
