#include "sim/register_cache.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace asdr::sim {

RegisterCache::RegisterCache(int capacity) : capacity_(capacity)
{
    ASDR_ASSERT(capacity >= 0, "negative cache capacity");
    entries_.reserve(size_t(capacity));
}

bool
RegisterCache::access(uint32_t key)
{
    if (capacity_ == 0) {
        ++misses_;
        return false;
    }
    auto it = std::find(entries_.begin(), entries_.end(), key);
    if (it != entries_.end()) {
        ++hits_;
        // Move to MRU position.
        entries_.erase(it);
        entries_.insert(entries_.begin(), key);
        return true;
    }
    ++misses_;
    if (int(entries_.size()) >= capacity_)
        entries_.pop_back(); // evict LRU
    entries_.insert(entries_.begin(), key);
    return false;
}

bool
RegisterCache::contains(uint32_t key) const
{
    return std::find(entries_.begin(), entries_.end(), key) !=
           entries_.end();
}

double
RegisterCache::hitRate() const
{
    uint64_t total = hits_ + misses_;
    return total ? double(hits_) / double(total) : 0.0;
}

void
RegisterCache::reset()
{
    entries_.clear();
    hits_ = 0;
    misses_ = 0;
}

RegisterCacheBank::RegisterCacheBank(int tables, int entries_per_table)
{
    ASDR_ASSERT(tables > 0, "need at least one table");
    caches_.reserve(size_t(tables));
    for (int t = 0; t < tables; ++t)
        caches_.emplace_back(entries_per_table);
}

RegisterCacheBank::RegisterCacheBank(const std::vector<int> &capacities,
                                     int tables)
{
    ASDR_ASSERT(tables > 0, "need at least one table");
    ASDR_ASSERT(!capacities.empty(), "need at least one capacity");
    caches_.reserve(size_t(tables));
    for (int t = 0; t < tables; ++t) {
        size_t idx = std::min(size_t(t), capacities.size() - 1);
        caches_.emplace_back(capacities[idx]);
    }
}

int
RegisterCacheBank::totalEntries() const
{
    int total = 0;
    for (const auto &c : caches_)
        total += c.capacity();
    return total;
}

bool
RegisterCacheBank::access(int table, uint32_t key)
{
    return caches_.at(size_t(table)).access(key);
}

double
RegisterCacheBank::overallHitRate() const
{
    uint64_t hits = 0, total = 0;
    for (const auto &c : caches_) {
        hits += c.hits();
        total += c.hits() + c.misses();
    }
    return total ? double(hits) / double(total) : 0.0;
}

void
RegisterCacheBank::reset()
{
    for (auto &c : caches_)
        c.reset();
}

} // namespace asdr::sim
