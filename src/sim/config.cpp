#include "sim/config.hpp"

#include <algorithm>

namespace asdr::sim {

AccelConfig
AccelConfig::server()
{
    AccelConfig cfg;
    cfg.name = "ASDR-Server";
    cfg.ag_lanes = 64;
    cfg.cache_entries_per_table = 8;  // 128 entries / 16 tables (Table 2)
    cfg.fusion_units = 32;
    cfg.density_pipelines = 4;
    cfg.color_pipelines = 4;
    cfg.approx_units = 16;
    cfg.rgb_units = 8;
    cfg.adaptive_sample_units = 8;
    cfg.batch_points = 16;
    return cfg;
}

AccelConfig
AccelConfig::edge()
{
    AccelConfig cfg;
    cfg.name = "ASDR-Edge";
    cfg.ag_lanes = 16;
    cfg.cache_entries_per_table = 2;  // 32 entries / 16 tables (Table 2)
    cfg.fusion_units = 8;
    cfg.density_pipelines = 1;
    cfg.color_pipelines = 1;
    cfg.approx_units = 4;
    cfg.rgb_units = 2;
    cfg.adaptive_sample_units = 2;
    // The 2 MB edge memory affords far fewer independent crossbar IO
    // groups than the 64 MB server array.
    cfg.hashed_ports = 2;
    cfg.dense_port_cap = 8;
    return cfg;
}

AccelConfig
AccelConfig::strawman(bool edge_scale)
{
    AccelConfig cfg = edge_scale ? edge() : server();
    cfg.name = edge_scale ? "Strawman-Edge" : "Strawman-Server";
    cfg.mapping = MappingMode::HashOnly;
    cfg.cache_enabled = false;
    return cfg;
}

AccelConfig
AccelConfig::withVariant(AccelConfig base, MlpBackend mlp, MemBackend mem)
{
    base.mlp_backend = mlp;
    base.mem_backend = mem;
    if (mem == MemBackend::Sram) {
        // SRAM is far less dense than ReRAM; at iso-area the encoding
        // memory affords half the independent IO groups.
        base.hashed_ports = std::max(1, base.hashed_ports / 2);
        base.dense_port_cap = std::max(1, base.dense_port_cap / 2);
    }
    std::string suffix;
    if (mlp == MlpBackend::Systolic)
        suffix = "(SA)";
    else if (mem == MemBackend::Sram)
        suffix = "(SRAM)";
    else
        suffix = "(ReRAM)";
    base.name += suffix;
    return base;
}

} // namespace asdr::sim
