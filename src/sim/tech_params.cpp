#include "sim/tech_params.hpp"

namespace asdr::sim {

EnergyParams
EnergyParams::forBackend(MemBackend mem, MlpBackend mlp)
{
    EnergyParams p;
    if (mem == MemBackend::Sram) {
        // SRAM macro reads burn more dynamic energy per access at this
        // capacity (leakier arrays, longer bitlines) than ReRAM reads.
        p.mem_read_row = 2.6;
    }
    switch (mlp) {
      case MlpBackend::ReramCim:
        break;
      case MlpBackend::SramCim:
        p.mvm_block_cycle = 20.5;
        break;
      case MlpBackend::Systolic:
        break; // systolic path bills per-MAC instead of per-block
    }
    return p;
}

LatencyParams
LatencyParams::forBackend(MemBackend mem, MlpBackend mlp)
{
    LatencyParams p;
    // ReRAM sensing takes several ns; at the 1 GHz synthesis point a
    // row read occupies its port for 4 cycles. SRAM macros of this
    // capacity resolve in 3.
    p.mem_read_cycles = (mem == MemBackend::Sram) ? 3 : 4;
    if (mlp == MlpBackend::SramCim)
        p.mvm_cycle_scale = 1.25; // extra precision/margining cycles
    return p;
}

namespace {

const ComponentBudget kBudgets[] = {
    {"Address Generator", 0.013, 0.003, 8.04, 2.01},
    {"Reg-based Cache", 0.007, 0.002, 2.66, 0.67},
    {"Mem Xbars", 5.03, 1.26, 5.33, 1.33},
    {"Fusion Unit", 0.220, 0.055, 107.99, 27.00},
    {"Density SubEngine", 3.44, 0.86, 28.44, 7.11},
    {"Color SubEngine", 5.76, 1.44, 47.30, 11.82},
    {"Approximation Unit", 0.118, 0.029, 52.21, 13.05},
    {"RGB Unit", 0.013, 0.003, 5.40, 1.35},
    {"Adaptive Sample Unit", 0.0007, 0.0002, 0.27, 0.07},
    {"Buffers", 0.27, 0.06, 79.0, 19.55},
};

} // namespace

const ComponentBudget *
componentBudgets(int &count)
{
    count = int(sizeof(kBudgets) / sizeof(kBudgets[0]));
    return kBudgets;
}

double
totalAreaMm2(bool edge)
{
    int n = 0;
    const ComponentBudget *rows = componentBudgets(n);
    double total = 0.0;
    for (int i = 0; i < n; ++i)
        total += edge ? rows[i].area_edge_mm2 : rows[i].area_server_mm2;
    return total;
}

double
sumComponentPowerW(bool edge)
{
    int n = 0;
    const ComponentBudget *rows = componentBudgets(n);
    double total = 0.0;
    for (int i = 0; i < n; ++i)
        total += edge ? rows[i].power_edge_mw : rows[i].power_server_mw;
    return total / 1000.0;
}

double
totalPowerW(bool edge)
{
    // Table 2 quotes 5.77 W / 1.44 W as the design totals. Unlike the
    // area column, the per-row power figures are per *unit instance*
    // (they do not sum to the quoted total); we therefore carry the
    // quoted totals explicitly and keep the rows for the per-component
    // table reproduction. See EXPERIMENTS.md (Table 2 notes).
    return edge ? 1.44 : 5.77;
}

} // namespace asdr::sim
