#include "sim/encoding_engine.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace asdr::sim {

EncodingEngine::EncodingEngine(const nerf::TableSchema &schema,
                               const AccelConfig &cfg)
    : cfg_(cfg), mapping_(schema, cfg),
      caches_(cfg.cache_enabled && !cfg.cache_profile.empty()
                  ? RegisterCacheBank(cfg.cache_profile,
                                      int(schema.tables.size()))
                  : RegisterCacheBank(int(schema.tables.size()),
                                      cfg.cache_enabled
                                          ? cfg.cache_entries_per_table
                                          : 0)),
      energy_(EnergyParams::forBackend(cfg.mem_backend, cfg.mlp_backend)),
      latency_(LatencyParams::forBackend(cfg.mem_backend, cfg.mlp_backend))
{
    // Flat (table, port) load array: table t's ports start at
    // port_base_[t].
    port_base_.resize(schema.tables.size() + 1, 0);
    for (size_t t = 0; t < schema.tables.size(); ++t)
        port_base_[t + 1] = port_base_[t] + uint32_t(mapping_.ports(int(t)));
    batch_port_load_.assign(port_base_.back(), 0);
}

void
EncodingEngine::onPointLookups(const nerf::VertexLookup *lookups,
                               size_t count)
{
    report_.lookups += count;
    batch_addrs_ += count;
    batch_fusion_ops_ += count / 8; // one trilinear blend per table-level

    for (size_t i = 0; i < count; ++i) {
        const nerf::VertexLookup &lu = lookups[i];
        bool hit = caches_.access(lu.level, lu.index);
        report_.energy_pj +=
            energy_.addr_gen +
            energy_.cache_probe * double(cfg_.cache_entries_per_table);
        if (hit) {
            ++report_.cache_hits;
            continue;
        }
        report_.energy_pj += energy_.cache_fill;
        PhysAddr pa = mapping_.map(lu, requester_rr_++);
        uint32_t slot = port_base_[pa.table] + pa.port;
        if (batch_port_load_[slot] == 0)
            touched_ports_.push_back(slot);
        batch_port_load_[slot]++;
        ++report_.mem_reads;
        report_.energy_pj += energy_.mem_read_row;
    }

    if (++batch_points_ >= cfg_.batch_points)
        flushBatch();
}

void
EncodingEngine::flushBatch()
{
    if (batch_points_ == 0)
        return;

    uint64_t gen_cycles =
        (batch_addrs_ + uint64_t(cfg_.ag_lanes) - 1) /
        uint64_t(cfg_.ag_lanes);

    uint64_t mem_cycles = 0;
    for (uint32_t slot : touched_ports_) {
        uint64_t c = uint64_t(batch_port_load_[slot]) *
                     uint64_t(latency_.mem_read_cycles);
        mem_cycles = std::max(mem_cycles, c);
        batch_port_load_[slot] = 0;
    }
    touched_ports_.clear();

    uint64_t fusion_cycles =
        (batch_fusion_ops_ + uint64_t(cfg_.fusion_units) - 1) /
        uint64_t(cfg_.fusion_units);
    report_.energy_pj +=
        double(batch_fusion_ops_) * 8.0 * 2.0 * energy_.fusion_mac;

    uint64_t batch_cycles =
        std::max({gen_cycles, mem_cycles, fusion_cycles, uint64_t(1)});
    report_.cycles += batch_cycles;
    if (mem_cycles > gen_cycles)
        report_.conflict_stall_cycles += mem_cycles - gen_cycles;

    batch_points_ = 0;
    batch_addrs_ = 0;
    batch_fusion_ops_ = 0;
}

EncodingReport
EncodingEngine::finish()
{
    flushBatch();
    return report_;
}

void
EncodingEngine::reset()
{
    flushBatch();
    std::fill(batch_port_load_.begin(), batch_port_load_.end(), 0);
    touched_ports_.clear();
    caches_.reset();
    report_ = EncodingReport();
    batch_points_ = 0;
    batch_addrs_ = 0;
    batch_fusion_ops_ = 0;
    requester_rr_ = 0;
}

} // namespace asdr::sim
