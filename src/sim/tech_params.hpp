/**
 * @file
 * Technology constants of the cycle-level model: per-event energies
 * (NeuroSim/CACTI-style, 28 nm class) and per-component area/power
 * (paper Table 2, which we encode verbatim and validate in tests).
 *
 * Only *ratios* between platforms are claimed by the evaluation; the
 * absolute constants are published ballpark values, with the ReRAM /
 * SRAM / systolic relations chosen to reproduce the ordering the paper
 * reports in Figs. 26-27 (ReRAM fastest and most efficient, SRAM CIM
 * next, SRAM+systolic last).
 */

#ifndef ASDR_SIM_TECH_PARAMS_HPP
#define ASDR_SIM_TECH_PARAMS_HPP

#include "sim/config.hpp"

namespace asdr::sim {

/** Per-event dynamic energies in picojoules. */
struct EnergyParams
{
    // Encoding engine
    double mem_read_row = 2.0;    ///< ReRAM crossbar row read (64 b + SA)
    double cache_probe = 0.05;    ///< one all-to-all compare lane
    double cache_fill = 0.2;
    double fusion_mac = 0.4;      ///< one interpolation MAC
    double addr_gen = 0.3;        ///< one address (hash or reorder)

    // MLP engine (per 64x64 block, per input-bit cycle; includes DAC,
    // array activation and the 5-bit ADC conversions of one read)
    double mvm_block_cycle = 16.0;
    double systolic_mac = 1.1;    ///< one digital fp16 MAC (SA variant)
    double nonlinear_op = 0.5;

    // Volume rendering engine
    double render_op = 0.5;       ///< one approx/RGB/AS-unit operation

    // Buffers
    double buffer_access = 1.0;   ///< per 8 B

    /** Constants for one storage/datapath technology choice. */
    static EnergyParams forBackend(MemBackend mem, MlpBackend mlp);
};

/** Per-cycle latency scaling of the technology variants. */
struct LatencyParams
{
    /** Port-occupancy cycles per memory row read (ReRAM sensing). */
    int mem_read_cycles = 4;
    /** Multiplier on MVM block-cycles (SRAM CIM streams more bits). */
    double mvm_cycle_scale = 1.0;

    static LatencyParams forBackend(MemBackend mem, MlpBackend mlp);
};

/** One Table 2 row: component area and power for Server / Edge. */
struct ComponentBudget
{
    const char *component;
    double area_server_mm2;
    double area_edge_mm2;
    double power_server_mw;
    double power_edge_mw;
};

/** The full Table 2, in paper order. */
const ComponentBudget *componentBudgets(int &count);

/** Total die area: sum of the Table 2 rows (paper: 15.09 / 3.77 mm^2). */
double totalAreaMm2(bool edge);

/** Design power as quoted by Table 2 (5.77 / 1.44 W). The per-row power
 *  figures are per unit instance and do not sum to this. */
double totalPowerW(bool edge);

/** Sum of the per-row (per-unit) power figures, for the table bench. */
double sumComponentPowerW(bool edge);

} // namespace asdr::sim

#endif // ASDR_SIM_TECH_PARAMS_HPP
