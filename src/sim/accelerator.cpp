#include "sim/accelerator.hpp"

#include <algorithm>

namespace asdr::sim {

AsdrAccelerator::AsdrAccelerator(const nerf::TableSchema &schema,
                                 const nerf::FieldCosts &costs,
                                 const AccelConfig &cfg, bool edge_scale)
    : cfg_(cfg), edge_scale_(edge_scale), enc_(schema, cfg),
      mlp_(costs, cfg), render_(cfg),
      energy_(EnergyParams::forBackend(cfg.mem_backend, cfg.mlp_backend))
{
}

void
AsdrAccelerator::onFrameBegin(int width, int height)
{
    (void)width;
    (void)height;
    enc_.reset();
    mlp_.reset();
    render_.reset();
    buffer_events_ = 0;
    report_ = SimReport();
    report_.config_name = cfg_.name;
}

void
AsdrAccelerator::onRayBegin(int px, int py, bool probe)
{
    (void)px;
    (void)py;
    in_probe_ray_ = probe;
}

void
AsdrAccelerator::onPointLookups(const nerf::VertexLookup *lookups,
                                size_t count)
{
    enc_.onPointLookups(lookups, count);
    ++buffer_events_; // embed-buffer staging for the fusion unit
}

void
AsdrAccelerator::onDensityExec()
{
    mlp_.onDensityExec();
    render_.onPointComposited();
    buffer_events_ += 2; // density & color buffer traffic
}

void
AsdrAccelerator::onColorExec()
{
    mlp_.onColorExec();
    ++buffer_events_;
}

void
AsdrAccelerator::onApproxColor()
{
    render_.onApproxColor();
}

void
AsdrAccelerator::onRayEnd()
{
    if (in_probe_ray_) {
        // Eq. (3) evaluation over the candidate subset list.
        render_.onProbeEvaluation(4);
        in_probe_ray_ = false;
    }
}

void
AsdrAccelerator::onFrameEnd()
{
    report_.enc = enc_.finish();
    report_.mlp = mlp_.finish();
    report_.render = render_.finish();

    report_.total_cycles = std::max(
        {report_.enc.cycles, report_.mlp.cycles(), report_.render.cycles});
    double hz = cfg_.clock_ghz * 1e9;
    report_.seconds = double(report_.total_cycles) / hz;
    report_.enc_seconds = double(report_.enc.cycles) / hz;
    report_.mlp_seconds = double(report_.mlp.cycles()) / hz;

    double dyn_pj = report_.enc.energy_pj + report_.mlp.energyPj() +
                    report_.render.energy_pj +
                    double(buffer_events_) * energy_.buffer_access;
    report_.dynamic_energy_j = dyn_pj * 1e-12;
    // Leakage + clock tree while rendering; CIM arrays are only
    // activated per access, so the idle share of the Table 2 power is
    // modest.
    report_.static_energy_j =
        totalPowerW(edge_scale_) * 0.15 * report_.seconds;
    report_.energy_j = report_.dynamic_energy_j + report_.static_energy_j;
}

} // namespace asdr::sim
