/**
 * @file
 * Pinhole camera and ray generation (paper Fig. 2a): one ray per pixel,
 * marched through the unit-cube scene volume.
 */

#ifndef ASDR_NERF_CAMERA_HPP
#define ASDR_NERF_CAMERA_HPP

#include <vector>

#include "scene/analytic_scene.hpp"
#include "util/vec.hpp"

namespace asdr::nerf {

struct Ray
{
    Vec3 origin;
    Vec3 dir; ///< normalized
};

/** Pinhole camera; +y up, looking from `pos` toward `look_at`. */
class Camera
{
  public:
    Camera(Vec3 pos, Vec3 look_at, Vec3 up, float fov_deg, int width,
           int height);

    int width() const { return width_; }
    int height() const { return height_; }
    const Vec3 &position() const { return pos_; }
    /** Unit view direction (used by the engine's camera-delta checks). */
    const Vec3 &forward() const { return forward_; }

    /** Ray through fractional pixel coordinates (px+0.5, py+0.5 for the
     *  pixel center). */
    Ray ray(float px, float py) const;

    /**
     * The same viewpoint at a different resolution: position, basis and
     * vertical FOV are preserved, the aspect ratio follows the new
     * dimensions. Used by the serving quality ladder to render a
     * degraded frame at reduced resolution without re-deriving the
     * look-at parameters (which the camera does not retain).
     */
    Camera scaledTo(int width, int height) const;

  private:
    Vec3 pos_;
    Vec3 forward_;
    Vec3 right_;
    Vec3 up_;
    int width_;
    int height_;
    float tan_half_fov_;
    float aspect_;
};

/**
 * Slab intersection of a ray with the unit cube [0,1]^3.
 * @return true with [t0, t1] when the ray passes through the cube.
 */
bool intersectUnitCube(const Ray &ray, float &t0, float &t1);

/** Camera for a named scene at the given render resolution. */
Camera cameraForScene(const scene::SceneInfo &info, int width, int height);

/**
 * Camera position of the standard orbit at `angle` radians: the
 * scene's default viewpoint rotated about the volume's vertical center
 * axis. The ONE source of orbit geometry -- the wire workload and
 * examples rebuild bit-identical cameras from it, so every orbit
 * consumer must derive positions here rather than re-rotating by hand.
 */
Vec3 orbitPosition(const scene::SceneInfo &info, float angle);

/**
 * A `frames`-step orbit for streaming benchmarks and examples: the
 * scene's default viewpoint rotated about the volume's vertical center
 * axis in `step_rad` increments (element 0 is the default camera).
 */
std::vector<Camera> orbitCameraPath(const scene::SceneInfo &info, int width,
                                    int height, int frames,
                                    float step_rad = 0.15f);

/**
 * Render resolution for a scene at a given scale: the paper-resolution
 * frame (Table 1) scaled down by `scale`, aspect preserved, min 16 px.
 */
void scaledResolution(const scene::SceneInfo &info, float scale, int &width,
                      int &height);

} // namespace asdr::nerf

#endif // ASDR_NERF_CAMERA_HPP
