#include "nerf/camera.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace asdr::nerf {

Camera::Camera(Vec3 pos, Vec3 look_at, Vec3 up, float fov_deg, int width,
               int height)
    : pos_(pos), width_(width), height_(height)
{
    ASDR_ASSERT(width > 0 && height > 0, "bad camera resolution");
    forward_ = normalize(look_at - pos);
    right_ = normalize(cross(up, forward_));
    up_ = cross(forward_, right_);
    tan_half_fov_ = std::tan(fov_deg * 0.5f * 3.14159265358979f / 180.0f);
    aspect_ = float(width) / float(height);
}

Ray
Camera::ray(float px, float py) const
{
    // NDC in [-1, 1], y up.
    float ndc_x = (2.0f * px / float(width_)) - 1.0f;
    float ndc_y = 1.0f - (2.0f * py / float(height_));
    Vec3 dir = forward_ + right_ * (ndc_x * tan_half_fov_ * aspect_) +
               up_ * (ndc_y * tan_half_fov_);
    return {pos_, normalize(dir)};
}

Camera
Camera::scaledTo(int width, int height) const
{
    ASDR_ASSERT(width > 0 && height > 0, "bad camera resolution");
    Camera c = *this;
    c.width_ = width;
    c.height_ = height;
    c.aspect_ = float(width) / float(height);
    return c;
}

bool
intersectUnitCube(const Ray &ray, float &t0, float &t1)
{
    t0 = 0.0f;
    t1 = std::numeric_limits<float>::max();
    for (int axis = 0; axis < 3; ++axis) {
        float o = ray.origin[axis];
        float d = ray.dir[axis];
        if (std::fabs(d) < 1e-9f) {
            if (o < 0.0f || o > 1.0f)
                return false;
            continue;
        }
        float ta = (0.0f - o) / d;
        float tb = (1.0f - o) / d;
        if (ta > tb)
            std::swap(ta, tb);
        t0 = std::max(t0, ta);
        t1 = std::min(t1, tb);
        if (t0 > t1)
            return false;
    }
    return t1 > 0.0f;
}

Camera
cameraForScene(const scene::SceneInfo &info, int width, int height)
{
    return Camera(info.cam_pos, info.look_at, Vec3(0.0f, 1.0f, 0.0f),
                  info.fov_deg, width, height);
}

Vec3
orbitPosition(const scene::SceneInfo &info, float angle)
{
    Vec3 pos = info.cam_pos;
    const float dx = pos.x - 0.5f;
    const float dz = pos.z - 0.5f;
    pos.x = 0.5f + dx * std::cos(angle) - dz * std::sin(angle);
    pos.z = 0.5f + dx * std::sin(angle) + dz * std::cos(angle);
    return pos;
}

std::vector<Camera>
orbitCameraPath(const scene::SceneInfo &info, int width, int height,
                int frames, float step_rad)
{
    std::vector<Camera> path;
    path.reserve(size_t(std::max(0, frames)));
    for (int f = 0; f < frames; ++f) {
        path.emplace_back(orbitPosition(info, step_rad * float(f)),
                          info.look_at, Vec3(0.0f, 1.0f, 0.0f),
                          info.fov_deg, width, height);
    }
    return path;
}

void
scaledResolution(const scene::SceneInfo &info, float scale, int &width,
                 int &height)
{
    width = std::max(16, int(std::lround(float(info.full_width) * scale)));
    height = std::max(16, int(std::lround(float(info.full_height) * scale)));
}

} // namespace asdr::nerf
