#include "nerf/volume_render.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace asdr::nerf {

CompositeResult
composite(const float *sigma, const Vec3 *color, int n, float dt, int stride)
{
    ASDR_ASSERT(stride >= 1, "stride must be >= 1");
    CompositeResult out;
    float transmittance = 1.0f;
    float dt_eff = dt * float(stride);
    for (int i = 0; i < n; i += stride) {
        float alpha = alphaFromSigma(sigma[i], dt_eff);
        float w = transmittance * alpha;
        out.color += color[i] * w;
        transmittance *= (1.0f - alpha);
        if (transmittance < 1e-5f)
            break;
    }
    out.opacity = 1.0f - transmittance;
    return out;
}

void
compositeMulti(const float *sigma, const Vec3 *color, int n, float dt,
               const int *strides, int count, CompositeResult *out)
{
    constexpr int kMax = 32;
    ASDR_ASSERT(count >= 0 && count <= kMax, "too many strides");
    float trans[kMax];
    float dt_eff[kMax];
    int next[kMax]; ///< next point index candidate k consumes
    bool done[kMax];
    for (int k = 0; k < count; ++k) {
        ASDR_ASSERT(strides[k] >= 1, "stride must be >= 1");
        out[k] = CompositeResult{};
        trans[k] = 1.0f;
        dt_eff[k] = dt * float(strides[k]);
        next[k] = 0;
        done[k] = false;
    }
    int active = count;
    for (int i = 0; i < n && active > 0; ++i) {
        for (int k = 0; k < count; ++k) {
            if (next[k] != i)
                continue;
            next[k] += strides[k];
            if (done[k])
                continue;
            // Exactly composite()'s per-point update for candidate k.
            float alpha = alphaFromSigma(sigma[i], dt_eff[k]);
            float w = trans[k] * alpha;
            out[k].color += color[i] * w;
            trans[k] *= (1.0f - alpha);
            if (trans[k] < 1e-5f) {
                done[k] = true;
                --active;
            }
        }
    }
    for (int k = 0; k < count; ++k)
        out[k].opacity = 1.0f - trans[k];
}

int
earlyTerminationIndex(const float *sigma, int n, float dt, float eps)
{
    float transmittance = 1.0f;
    for (int i = 0; i < n; ++i) {
        transmittance *= (1.0f - alphaFromSigma(sigma[i], dt));
        if (transmittance < eps)
            return i + 1;
    }
    return n;
}

} // namespace asdr::nerf
