#include "nerf/volume_render.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace asdr::nerf {

CompositeResult
composite(const float *sigma, const Vec3 *color, int n, float dt, int stride)
{
    ASDR_ASSERT(stride >= 1, "stride must be >= 1");
    CompositeResult out;
    float transmittance = 1.0f;
    float dt_eff = dt * float(stride);
    for (int i = 0; i < n; i += stride) {
        float alpha = alphaFromSigma(sigma[i], dt_eff);
        float w = transmittance * alpha;
        out.color += color[i] * w;
        transmittance *= (1.0f - alpha);
        if (transmittance < 1e-5f)
            break;
    }
    out.opacity = 1.0f - transmittance;
    return out;
}

int
earlyTerminationIndex(const float *sigma, int n, float dt, float eps)
{
    float transmittance = 1.0f;
    for (int i = 0; i < n; ++i) {
        transmittance *= (1.0f - alphaFromSigma(sigma[i], dt));
        if (transmittance < eps)
            return i + 1;
    }
    return n;
}

} // namespace asdr::nerf
