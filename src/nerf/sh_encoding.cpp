#include "nerf/sh_encoding.hpp"

namespace asdr::nerf {

void
shEncode(const Vec3 &d, float *out)
{
    const float x = d.x, y = d.y, z = d.z;
    const float xx = x * x, yy = y * y, zz = z * z;
    const float xy = x * y, yz = y * z, xz = x * z;

    // Degree 0
    out[0] = 0.28209479177387814f;
    // Degree 1
    out[1] = -0.48860251190291987f * y;
    out[2] = 0.48860251190291987f * z;
    out[3] = -0.48860251190291987f * x;
    // Degree 2
    out[4] = 1.0925484305920792f * xy;
    out[5] = -1.0925484305920792f * yz;
    out[6] = 0.31539156525252005f * (3.0f * zz - 1.0f);
    out[7] = -1.0925484305920792f * xz;
    out[8] = 0.5462742152960396f * (xx - yy);
    // Degree 3
    out[9] = -0.5900435899266435f * y * (3.0f * xx - yy);
    out[10] = 2.890611442640554f * xy * z;
    out[11] = -0.4570457994644658f * y * (5.0f * zz - 1.0f);
    out[12] = 0.3731763325901154f * z * (5.0f * zz - 3.0f);
    out[13] = -0.4570457994644658f * x * (5.0f * zz - 1.0f);
    out[14] = 1.445305721320277f * z * (xx - yy);
    out[15] = -0.5900435899266435f * x * (xx - 3.0f * yy);
}

double
shEncodeFlops()
{
    return 60.0; // handful of products and sums per basis function
}

} // namespace asdr::nerf
