/**
 * @file
 * DirectVoxGO-style radiance field (Sun et al., CVPR 2022; paper
 * Table 5 and §8.1): *dense* multi-resolution 3D feature grids (no
 * hashing) with trilinear interpolation, a direct density grid, and a
 * small color MLP over the concatenated grid features + SH direction
 * encoding. The paper argues ASDR's optimizations apply directly to
 * such models because the lookup/interpolate/MLP pipeline is identical;
 * this field lets the benches demonstrate that.
 */

#ifndef ASDR_NERF_DVGO_HPP
#define ASDR_NERF_DVGO_HPP

#include "nerf/field.hpp"
#include "nerf/mlp.hpp"
#include "nerf/ngp_field.hpp"
#include "scene/analytic_scene.hpp"

namespace asdr::nerf {

struct DvgoConfig
{
    /** Dense feature-grid resolutions, coarse to fine. */
    std::vector<int> resolutions{16, 32, 64};
    int features_per_level = 2;
    /** Resolution of the direct density grid. */
    int density_resolution = 64;
    std::vector<int> color_hidden{64};
};

class DvgoField : public RadianceField
{
  public:
    explicit DvgoField(const DvgoConfig &cfg, uint64_t seed = 3);

    // RadianceField interface
    DensityOutput density(const Vec3 &pos) const override;
    Vec3 color(const Vec3 &pos, const Vec3 &dir,
               const DensityOutput &den) const override;
    /** Batched color: grid reads per point, one blocked MLP forward. */
    void colorBatch(const Vec3 *pos, const Vec3 &dir,
                    const DensityOutput *den, int count,
                    Vec3 *out) const override;
    void traceLookups(const Vec3 &pos, LookupSink &sink) const override;
    TableSchema tableSchema() const override;
    FieldCosts costs() const override;
    std::string describe() const override;

    const DvgoConfig &config() const { return cfg_; }
    int featureDim() const
    {
        return int(cfg_.resolutions.size()) * cfg_.features_per_level;
    }

    // --- training (same distillation protocol as the other fields) ---
    float trainStep(const InstantNgpField::TrainSample &s);
    void zeroGrads();
    void applyAdam(float lr);

  private:
    struct DenseGrid
    {
        int resolution = 0;
        int features = 1;
        std::vector<float> value;
        std::vector<float> grad;
        std::vector<float> m, v;

        void init(int res, int feats, float scale, uint64_t &seed);
        /** Trilinear read of all features at unit-cube pos. */
        void read(const Vec3 &pos, float *out) const;
        /** Accumulate gradient of a read. */
        void accumGrad(const Vec3 &pos, const float *dout);
        void adamStep(float lr, int t);
        void zeroGrad();

        /** Voxel + fractional coordinates of `pos`. */
        void locate(const Vec3 &pos, Vec3i &voxel, Vec3 &frac) const;
    };

    DvgoConfig cfg_;
    std::vector<DenseGrid> feature_grids_;
    DenseGrid density_grid_; ///< raw density values (softplus applied)
    Mlp color_mlp_;
    int adam_t_ = 0;
};

/** Distillation fit (mirrors fitField / fitTensorf). */
struct DvgoTrainReport
{
    double final_loss = 0.0;
};
DvgoTrainReport fitDvgo(DvgoField &field,
                        const scene::AnalyticScene &scene, int steps,
                        int batch, float lr, uint64_t seed = 0xD7);

} // namespace asdr::nerf

#endif // ASDR_NERF_DVGO_HPP
