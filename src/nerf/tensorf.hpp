/**
 * @file
 * TensoRF-style radiance field (Chen et al. 2022; paper §6.8 and
 * Table 5): vector-matrix (VM) tensor decomposition. Density and
 * appearance are each modeled as a sum over three plane/line pairs
 * (XY*Z, XZ*Y, YZ*X); appearance features feed a small color MLP with
 * an SH direction encoding. Fully trainable by the same distillation
 * procedure as the NGP field.
 */

#ifndef ASDR_NERF_TENSORF_HPP
#define ASDR_NERF_TENSORF_HPP

#include "nerf/field.hpp"
#include "nerf/mlp.hpp"
#include "nerf/ngp_field.hpp"
#include "scene/analytic_scene.hpp"

namespace asdr::nerf {

struct TensorfConfig
{
    int resolution = 64;          ///< plane/line resolution per axis
    int density_components = 4;   ///< rank per plane/line orientation
    int appearance_components = 8;
    std::vector<int> color_hidden{64};
};

class TensorfField : public RadianceField
{
  public:
    explicit TensorfField(const TensorfConfig &cfg, uint64_t seed = 7);

    // RadianceField interface
    DensityOutput density(const Vec3 &pos) const override;
    Vec3 color(const Vec3 &pos, const Vec3 &dir,
               const DensityOutput &den) const override;
    /** Batched color: VM reads per point, one blocked MLP forward. */
    void colorBatch(const Vec3 *pos, const Vec3 &dir,
                    const DensityOutput *den, int count,
                    Vec3 *out) const override;
    void traceLookups(const Vec3 &pos, LookupSink &sink) const override;
    TableSchema tableSchema() const override;
    FieldCosts costs() const override;
    std::string describe() const override;

    const TensorfConfig &config() const { return cfg_; }
    int appearanceDim() const { return 3 * cfg_.appearance_components; }

    // --- training ---
    float trainStep(const InstantNgpField::TrainSample &s);
    void zeroGrads();
    void applyAdam(float lr);

  private:
    /** A trainable float tensor with its Adam state. */
    struct ParamTensor
    {
        std::vector<float> value;
        std::vector<float> grad;
        std::vector<float> m, v;

        void init(size_t n, float scale, uint64_t &seed_state);
        void zeroGrad();
        void adamStep(float lr, int t);
    };

    /** Bilinear plane read: comps values at (u, v) in [0,1]^2. */
    void readPlane(const ParamTensor &plane, int comps, float u, float v,
                   float *out) const;
    /** Linear line read: comps values at w in [0,1]. */
    void readLine(const ParamTensor &line, int comps, float w,
                  float *out) const;
    void accumPlaneGrad(ParamTensor &plane, int comps, float u, float v,
                        const float *dout);
    void accumLineGrad(ParamTensor &line, int comps, float w,
                       const float *dout);

    /** (u, v, w) for orientation o: planes XY/XZ/YZ, lines Z/Y/X. */
    static void orientationCoords(int o, const Vec3 &pos, float &u,
                                  float &v, float &w);

    TensorfConfig cfg_;
    // Orientation-indexed [0..2]; density and appearance sets.
    ParamTensor den_planes_[3], den_lines_[3];
    ParamTensor app_planes_[3], app_lines_[3];
    Mlp color_mlp_;
    int adam_t_ = 0;
};

/** Distillation fit, mirroring nerf::fitField for the NGP model. */
struct TensorfTrainReport
{
    double final_loss = 0.0;
};
TensorfTrainReport fitTensorf(TensorfField &field,
                              const scene::AnalyticScene &scene, int steps,
                              int batch, float lr, uint64_t seed = 0x7F);

} // namespace asdr::nerf

#endif // ASDR_NERF_TENSORF_HPP
