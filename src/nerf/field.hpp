/**
 * @file
 * The radiance-field abstraction the ASDR renderer and simulators are
 * built against. Three implementations exist:
 *
 *  - InstantNgpField: the real hash-grid + MLP network (quality
 *    experiments; it is what the paper accelerates),
 *  - ProceduralField: analytic density/color with the *same* lookup
 *    structure and reference FLOP profile (performance experiments,
 *    where running NN arithmetic on the host would only slow the sweep
 *    without changing any simulated quantity),
 *  - TensorfField: the VM-decomposed TensoRF model of §6.8.
 *
 * The architecture side consumes fields through two contracts: the
 * streaming VertexLookup trace (which embedding-table entries each
 * sampled point touches) and the TableSchema + FieldCosts profile
 * (table shapes, MLP layer shapes, per-op FLOPs).
 */

#ifndef ASDR_NERF_FIELD_HPP
#define ASDR_NERF_FIELD_HPP

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "util/vec.hpp"

namespace asdr::nerf {

/** Geometry feature width out of the NGP density network (sigma + 15). */
constexpr int kGeoFeatures = 16;

/** Upper bound on any field's geometry-feature width. */
constexpr int kMaxGeoFeatures = 32;

/** One embedding-table entry access, as seen by the architecture. */
struct VertexLookup
{
    uint16_t level = 0; ///< table id (hash-grid level / TensoRF plane)
    Vec3i vertex;       ///< integer lattice coordinates within the table
    uint32_t index = 0; ///< software table index (dense or hashed)
};

/** Receives the grid lookups implied by each sampled point. */
class LookupSink
{
  public:
    virtual ~LookupSink() = default;
    /** All lookups of one sample point, table-major. */
    virtual void onPointLookups(const VertexLookup *lookups, size_t count) = 0;
};

/** Static description of one embedding table. */
struct TableInfo
{
    uint32_t entries = 0;   ///< addressable entries
    bool dense = false;     ///< injective (un-hashed) indexing
    int verts_per_axis = 0; ///< lattice extent per axis (dense tables)
    int dims = 3;           ///< 3 = grid, 2 = plane, 1 = line
};

/** All embedding tables of a field, for the simulator's data mapping. */
struct TableSchema
{
    uint32_t hash_table_entries = 0; ///< capacity of each hashed table
    int features = 2;                ///< feature floats per entry
    std::vector<TableInfo> tables;
};

/** Shape of one dense layer, for the simulator's CIM mapping. */
struct LayerShape
{
    int in = 0;
    int out = 0;
};

/** Per-point operation costs + network shapes (the workload contract). */
struct FieldCosts
{
    double encode_flops = 0.0;  ///< per sampled point
    double density_flops = 0.0; ///< per density-network execution
    double color_flops = 0.0;   ///< per color-network execution
    std::vector<LayerShape> density_layers;
    std::vector<LayerShape> color_layers;
    int lookups_per_point = 0;
};

/** Density-network result: sigma plus the geometry feature vector that
 *  feeds the color network (paper Fig. 2c). */
struct DensityOutput
{
    float sigma = 0.0f;
    std::array<float, kMaxGeoFeatures> geo{};
};

class GridGeometry;

/** TableSchema for a multiresolution hash grid (one table per level). */
TableSchema schemaFromGeometry(const GridGeometry &geom);

class RadianceField
{
  public:
    virtual ~RadianceField() = default;

    /** Run the density network (or analytic equivalent) at `pos`. */
    virtual DensityOutput density(const Vec3 &pos) const = 0;

    /** Run the color network given the density result and direction. */
    virtual Vec3 color(const Vec3 &pos, const Vec3 &dir,
                       const DensityOutput &den) const = 0;

    /**
     * Batched density: `out[p] = density(pos[p])` for p in [0, count).
     * The base implementation loops; fields with batchable internals
     * (hash-grid encode + MLP) override it to amortize weight and table
     * streaming across the batch. Overrides must stay bit-identical to
     * the per-point path -- the renderer mixes both freely.
     */
    virtual void densityBatch(const Vec3 *pos, int count,
                              DensityOutput *out) const;

    /**
     * Batched color for `count` points sharing one view direction (the
     * samples of a single ray). Same equivalence contract as
     * densityBatch().
     */
    virtual void colorBatch(const Vec3 *pos, const Vec3 &dir,
                            const DensityOutput *den, int count,
                            Vec3 *out) const;

    /** Emit the embedding-table lookups querying `pos` implies. */
    virtual void traceLookups(const Vec3 &pos, LookupSink &sink) const = 0;

    /** Table shapes for the simulator's data mapping. */
    virtual TableSchema tableSchema() const = 0;

    virtual FieldCosts costs() const = 0;

    virtual std::string describe() const = 0;
};

} // namespace asdr::nerf

#endif // ASDR_NERF_FIELD_HPP
