/**
 * @file
 * Fully-connected MLP with ReLU hidden activations, single-sample forward
 * and backward passes, and a built-in Adam optimizer. Used for the
 * Instant-NGP density and color networks (paper Fig. 2c) and the TensoRF
 * appearance decoder. Kept deliberately simple: flat float storage,
 * cache-friendly row-major weights, no heap traffic in the hot path.
 */

#ifndef ASDR_NERF_MLP_HPP
#define ASDR_NERF_MLP_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace asdr::nerf {

/** Layer sizes of an MLP: input -> hidden... -> output. */
struct MlpConfig
{
    int input = 32;
    std::vector<int> hidden{64};
    int output = 16;
};

/** Scratch buffers holding the activations of one forward pass. */
struct MlpWorkspace
{
    std::vector<std::vector<float>> acts; ///< acts[0]=input, acts.back()=out
};

/**
 * Activations of a batched *training* forward: acts[li] holds `count`
 * row-major rows (point p's activation of layer li at row p), so the
 * per-sample backward can replay any point. acts[0] is the packed
 * input matrix, acts.back() the linear outputs.
 */
struct MlpBatchWorkspace
{
    std::vector<std::vector<float>> acts;
    int count = 0;
};

class Mlp
{
  public:
    Mlp(const MlpConfig &cfg, uint64_t seed);

    const MlpConfig &config() const { return cfg_; }
    int inputDim() const { return cfg_.input; }
    int outputDim() const { return cfg_.output; }

    /** Inference forward; `out` must hold outputDim() floats. */
    void forward(const float *in, float *out) const;

    /**
     * Batched inference forward over `count` points. Point p reads its
     * input at `in + p * in_stride` and writes its output at
     * `out + p * out_stride` (strides in floats, so SoA matrices and
     * strided struct members both work). Results are bit-identical to
     * `count` forward() calls; the win is data movement: points are
     * processed in cache-sized blocks and each weight row is streamed
     * once per block instead of once per point.
     */
    void forwardBatch(const float *in, int count, int in_stride, float *out,
                      int out_stride) const;

    /** Training forward retaining activations for backward(). */
    void forward(const float *in, float *out, MlpWorkspace &ws) const;

    /**
     * Batched training forward: the same register-blocked lane kernel
     * as the inference forwardBatch (bit-identical outputs), but every
     * layer's activations are retained in `ws` so backward(ws, p, ...)
     * can replay any sample of the batch. This is what lets the
     * distillation trainer stream its whole batch through the fast
     * kernel and still run exact per-sample backprop.
     */
    void forwardBatch(const float *in, int count, int in_stride, float *out,
                      int out_stride, MlpBatchWorkspace &ws) const;

    /**
     * Backpropagate dL/d(out); accumulates weight gradients and, when
     * `din` is non-null, writes dL/d(in) (for chaining into the encoder
     * or an upstream network).
     */
    void backward(const MlpWorkspace &ws, const float *dout, float *din);

    /** Backward for sample `p` of a batched training forward;
     *  bit-identical to backward() on the per-sample workspace. */
    void backward(const MlpBatchWorkspace &ws, int p, const float *dout,
                  float *din);

    void zeroGrad();
    void adamStep(float lr, float beta1 = 0.9f, float beta2 = 0.999f,
                  float eps = 1e-8f);

    size_t paramCount() const;
    /** Multiply-accumulates of one forward pass (the paper's FLOPs/2). */
    double forwardMacs() const;

    /** Flat parameter access for serialization (layer-major W then b). */
    std::vector<float> serializeParams() const;
    void deserializeParams(const std::vector<float> &flat);

  private:
    /** Shared backward core: acts[li] points at layer li's input
     *  activation vector (acts[layer count] = the linear output). */
    void backwardImpl(const float *const *acts, const float *dout,
                      float *din);

    struct Layer
    {
        int in = 0;
        int out = 0;
        std::vector<float> w; ///< out x in, row-major
        std::vector<float> b;
        std::vector<float> gw;
        std::vector<float> gb;
        std::vector<float> mw, vw, mb, vb; ///< Adam moments
    };

    MlpConfig cfg_;
    std::vector<Layer> layers_;
    size_t widest_ = 0; ///< widest layer output, for scratch sizing
    int adam_t_ = 0;
};

} // namespace asdr::nerf

#endif // ASDR_NERF_MLP_HPP
