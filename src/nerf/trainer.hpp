/**
 * @file
 * Distillation trainer: fits an InstantNgpField (or TensorfField) to an
 * analytic scene by pointwise supervision of density and view-dependent
 * color. This replaces the paper's use of pre-trained checkpoints (we
 * have no datasets offline); see DESIGN.md §1. The resulting fields land
 * in the paper's 26-37 dB PSNR range, making the quality experiments
 * meaningful.
 */

#ifndef ASDR_NERF_TRAINER_HPP
#define ASDR_NERF_TRAINER_HPP

#include <cstdint>

#include "nerf/ngp_field.hpp"
#include "scene/analytic_scene.hpp"
#include "util/rng.hpp"

namespace asdr::nerf {

struct TrainConfig
{
    int steps = 4000;
    int batch = 96;
    float lr = 4e-3f;
    /** Fraction of samples drawn near primitive surfaces (the rest are
     *  uniform over the cube); focuses capacity where density varies. */
    float surface_bias = 0.6f;
    uint64_t seed = 0x7E57;
    /** Report loss every `report_every` steps (0 = silent). */
    int report_every = 0;
};

struct TrainReport
{
    double initial_loss = 0.0;
    double final_loss = 0.0;
    int steps = 0;
};

/** Fit `field` to `scene` by Adam on pointwise distillation losses. */
TrainReport fitField(InstantNgpField &field,
                     const scene::AnalyticScene &scene,
                     const TrainConfig &cfg = {});

/** Draw one supervised sample (shared by NGP and TensoRF fitting). */
InstantNgpField::TrainSample drawSample(const scene::AnalyticScene &scene,
                                        Rng &rng, float surface_bias);

} // namespace asdr::nerf

#endif // ASDR_NERF_TRAINER_HPP
