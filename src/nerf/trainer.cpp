#include "nerf/trainer.hpp"

#include "util/logging.hpp"
#include "util/rng.hpp"

namespace asdr::nerf {

InstantNgpField::TrainSample
drawSample(const scene::AnalyticScene &scene, Rng &rng, float surface_bias)
{
    InstantNgpField::TrainSample s;
    if (rng.nextFloat() < surface_bias && !scene.primitives().empty()) {
        // Sample near a random primitive's surface: center + offset of
        // the order of the primitive's extent.
        const auto &prims = scene.primitives();
        const auto &prim =
            prims[rng.nextBounded(uint32_t(prims.size()))];
        float extent =
            std::max({prim.params.x, prim.params.y, prim.params.z, 0.02f});
        Vec3 offset{rng.nextGaussian(), rng.nextGaussian(),
                    rng.nextGaussian()};
        s.pos = prim.center + offset * (extent * 0.8f);
        s.pos = vmin(vmax(s.pos, Vec3(0.0f)), Vec3(1.0f));
    } else {
        s.pos = rng.nextVec3();
    }
    s.dir = rng.nextDirection();
    scene::SceneSample target = scene.sample(s.pos, s.dir);
    s.sigma_target = target.sigma;
    s.color_target = target.color;
    return s;
}

TrainReport
fitField(InstantNgpField &field, const scene::AnalyticScene &scene,
         const TrainConfig &cfg)
{
    ASDR_ASSERT(cfg.steps > 0 && cfg.batch > 0, "bad train config");
    Rng rng(cfg.seed, 0xDA7A);

    TrainReport report;
    report.steps = cfg.steps;
    std::vector<InstantNgpField::TrainSample> batch(size_t(cfg.batch));
    for (int step = 0; step < cfg.steps; ++step) {
        field.zeroGrads();
        // Draw the whole batch first (the RNG stream is consumed in the
        // same order as the per-sample loop), then stream it through
        // the batched forward/backward: losses, gradients, and the
        // fitted field are bit-identical to per-sample trainStep()
        // calls; the batched MLP kernels just move less data.
        for (int b = 0; b < cfg.batch; ++b)
            batch[size_t(b)] = drawSample(scene, rng, cfg.surface_bias);
        double batch_loss =
            field.trainBatch(batch.data(), cfg.batch) / double(cfg.batch);
        // Step-decayed learning rate: full, then 1/3, then 1/9.
        float lr = cfg.lr;
        if (step > cfg.steps * 2 / 3)
            lr *= 1.0f / 9.0f;
        else if (step > cfg.steps / 3)
            lr *= 1.0f / 3.0f;
        field.applyAdam(lr);

        if (step == 0)
            report.initial_loss = batch_loss;
        if (step == cfg.steps - 1)
            report.final_loss = batch_loss;
        if (cfg.report_every > 0 && step % cfg.report_every == 0)
            inform("train step ", step, " loss ", batch_loss);
    }
    return report;
}

} // namespace asdr::nerf
