/**
 * @file
 * Real spherical-harmonics direction encoding of degree 4 (16
 * coefficients), the view-direction encoding Instant-NGP feeds to the
 * color network.
 */

#ifndef ASDR_NERF_SH_ENCODING_HPP
#define ASDR_NERF_SH_ENCODING_HPP

#include "util/vec.hpp"

namespace asdr::nerf {

/** Number of SH coefficients at degree 4. */
constexpr int kShCoeffs = 16;

/**
 * Evaluate the first 16 real SH basis functions at unit direction `d`.
 * `out` must hold kShCoeffs floats.
 */
void shEncode(const Vec3 &d, float *out);

/** FLOPs of one shEncode() call, for the cost profiles. */
double shEncodeFlops();

} // namespace asdr::nerf

#endif // ASDR_NERF_SH_ENCODING_HPP
