#include "nerf/serialize.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "util/logging.hpp"

namespace asdr::nerf {

namespace {

constexpr uint32_t kMagic = 0xA5D40001;

bool
writeBlob(std::FILE *f, const std::vector<float> &blob)
{
    uint64_t n = blob.size();
    if (std::fwrite(&n, sizeof(n), 1, f) != 1)
        return false;
    return std::fwrite(blob.data(), sizeof(float), blob.size(), f) ==
           blob.size();
}

bool
readBlob(std::FILE *f, std::vector<float> &blob, size_t expected)
{
    uint64_t n = 0;
    if (std::fread(&n, sizeof(n), 1, f) != 1)
        return false;
    if (n != expected)
        return false;
    blob.resize(n);
    return std::fread(blob.data(), sizeof(float), blob.size(), f) ==
           blob.size();
}

} // namespace

std::string
dataDir()
{
    const char *env = std::getenv("ASDR_DATA_DIR");
    std::string dir = env ? env : "./asdr_data";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    return dir;
}

bool
saveField(const InstantNgpField &field, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    const auto &grid_cfg = field.modelConfig().grid;
    uint32_t header[5] = {kMagic, uint32_t(grid_cfg.levels),
                          grid_cfg.log2_table_size,
                          uint32_t(grid_cfg.features_per_level),
                          uint32_t(grid_cfg.max_resolution)};
    bool ok = std::fwrite(header, sizeof(header), 1, f) == 1;
    ok = ok && writeBlob(f, field.grid().params());
    ok = ok && writeBlob(f, field.densityMlp().serializeParams());
    ok = ok && writeBlob(f, field.colorMlp().serializeParams());
    std::fclose(f);
    if (!ok)
        warn("failed writing field cache ", path);
    return ok;
}

bool
loadField(InstantNgpField &field, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    const auto &grid_cfg = field.modelConfig().grid;
    uint32_t header[5] = {};
    bool ok = std::fread(header, sizeof(header), 1, f) == 1;
    ok = ok && header[0] == kMagic &&
         header[1] == uint32_t(grid_cfg.levels) &&
         header[2] == grid_cfg.log2_table_size &&
         header[3] == uint32_t(grid_cfg.features_per_level) &&
         header[4] == uint32_t(grid_cfg.max_resolution);

    std::vector<float> grid_blob, density_blob, color_blob;
    ok = ok && readBlob(f, grid_blob, field.grid().params().size());
    ok = ok && readBlob(f, density_blob, field.densityMlp().paramCount());
    ok = ok && readBlob(f, color_blob, field.colorMlp().paramCount());
    std::fclose(f);
    if (!ok)
        return false;

    field.grid().params() = std::move(grid_blob);
    field.densityMlp().deserializeParams(density_blob);
    field.colorMlp().deserializeParams(color_blob);
    return true;
}

std::string
fieldCachePath(const std::string &scene_name, const std::string &preset)
{
    return dataDir() + "/field_" + scene_name + "_" + preset + ".bin";
}

} // namespace asdr::nerf
