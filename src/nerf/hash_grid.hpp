/**
 * @file
 * Multiresolution hash-grid encoding (Instant-NGP, Mueller et al. 2022;
 * paper §2.2). L levels of 3D feature grids with geometrically growing
 * resolution; levels whose vertex lattice fits the table are stored
 * *densely* (injective index), larger levels are hashed with Eq. (2).
 *
 * The same GridGeometry object drives both the software encoder here and
 * the simulator's address mappings (sim/address_mapping), so renderer and
 * accelerator agree on every table index by construction.
 */

#ifndef ASDR_NERF_HASH_GRID_HPP
#define ASDR_NERF_HASH_GRID_HPP

#include <cstdint>
#include <vector>

#include "util/vec.hpp"

namespace asdr::nerf {

/** Hash-grid hyperparameters (paper defaults: L=16, T=2^19, F=2). */
struct HashGridConfig
{
    int levels = 16;
    uint32_t log2_table_size = 15; ///< scaled-down default; 19 in the paper
    int features_per_level = 2;
    int base_resolution = 16;
    int max_resolution = 512;
};

/** Static structure of one resolution level. */
struct GridLevelInfo
{
    int resolution = 16;        ///< voxels per axis (vertices = res+1)
    bool dense = false;         ///< stored un-hashed (lattice fits table)
    uint32_t table_entries = 0; ///< entries actually addressable
    uint32_t param_offset = 0;  ///< offset into the flat embedding array
};

/**
 * Resolution schedule + indexing rules, shared by encoder and simulator.
 * Indexing: dense levels use x-major lattice linearization; hashed levels
 * use the Eq. (2) XOR-prime hash.
 */
class GridGeometry
{
  public:
    explicit GridGeometry(const HashGridConfig &cfg);

    const HashGridConfig &config() const { return cfg_; }
    int levels() const { return int(levels_.size()); }
    const GridLevelInfo &level(int l) const { return levels_.at(size_t(l)); }
    uint32_t tableSize() const { return 1u << cfg_.log2_table_size; }
    int featureDim() const { return cfg_.levels * cfg_.features_per_level; }

    /** Table index of vertex `v` at level `l` (dense or hashed). */
    uint32_t index(int l, const Vec3i &v) const;

    /** Number of levels stored densely (the paper's "low resolution"
     *  tables that the hybrid mapping de-hashes and replicates). */
    int denseLevels() const;

    /** Total embedding parameters across all levels (floats). */
    size_t paramCount() const;

    /**
     * Voxel containing `pos` (unit cube) at level `l` plus the
     * fractional offsets used for trilinear interpolation.
     */
    void locate(int l, const Vec3 &pos, Vec3i &voxel, Vec3 &frac) const;

    /** The 8 lattice vertices of a voxel, x-fastest order. */
    static void voxelVertices(const Vec3i &voxel, Vec3i out[8]);

    /** Trilinear weights matching voxelVertices() order. */
    static void trilinearWeights(const Vec3 &frac, float out[8]);

    /**
     * The complete per-level lookup setup for one position: the 8 table
     * indices and trilinear weights in voxelVertices() order. Exactly
     * locate + voxelVertices + trilinearWeights + index per vertex, but
     * the 8 indices are built from shared per-axis partial products
     * (x*pi1, y*pi2, z*pi3 and their +1 neighbors), so the hash costs 3
     * multiplies instead of 24. Bit-identical to index() by the
     * associativity of uint32 arithmetic. Every encode path and the
     * batched kernel's setup pass go through this one implementation.
     */
    void gatherSetup(int l, const Vec3 &pos, uint32_t idx[8],
                     float w[8]) const;

  private:
    HashGridConfig cfg_;
    std::vector<GridLevelInfo> levels_;
};

/**
 * Per-level reuse statistics of batched encodes: the software-path
 * counterpart of the paper's Fig. 15 repetition measurements. `unique`
 * counts distinct table entries touched inside each encodeBatch call
 * (order-independent); `coherent` counts lookups whose index equals the
 * same corner's index of the immediately preceding point, i.e. hits
 * that a stream buffer or cache line would serve for free -- this is
 * what Morton/tile-coherent ray ordering maximizes. Stats accumulate
 * across calls; reset() clears them.
 */
struct EncodeReuseStats
{
    std::vector<uint64_t> lookups;  ///< 8 * points per level
    std::vector<uint64_t> unique;   ///< distinct entries per batch, summed
    std::vector<uint64_t> coherent; ///< same-corner previous-point hits

    // Cross-tenant sample-cache view (core/sample_cache) of the same
    // session: points the shared cache served without any encode at
    // all vs. points that fell through to the batched encode counted
    // above. Zero when no cache overlay is attached.
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    uint64_t cache_evictions = 0;
    uint64_t cache_epoch_drops = 0;

    void reset(int levels);
    void merge(const EncodeReuseStats &o);
    /** Average lookups per distinct entry (>= 1; higher = more reuse). */
    double reuseFactor(int level) const;
    /** Fraction of lookups hitting the previous point's entry. */
    double coherentFraction(int level) const;
    /** Fraction of probed points the sample cache served. */
    double cacheHitRate() const
    {
        const uint64_t total = cache_hits + cache_misses;
        return total ? double(cache_hits) / double(total) : 0.0;
    }
};

/**
 * Trainable multiresolution embedding storage + encoder. Gradients are
 * accumulated by backward() and applied by adamStep(); inference-only
 * users never touch the optimizer state (it is allocated lazily).
 */
class HashGrid
{
  public:
    explicit HashGrid(const HashGridConfig &cfg, uint64_t seed = 0x9106);

    const GridGeometry &geometry() const { return geom_; }
    int featureDim() const { return geom_.featureDim(); }

    /**
     * Encode a unit-cube position into the concatenated per-level
     * interpolated features. `out` must hold featureDim() floats.
     */
    void encode(const Vec3 &pos, float *out) const;

    /**
     * Encode `count` positions into a row-major feature matrix: point p
     * writes featureDim() floats at `out + p * out_stride`. Levels are
     * walked in the outer loop so one level's table region stays hot
     * across the whole batch (ray samples are spatially clustered).
     *
     * Internally a two-pass kernel per level: (1) a setup pass computes
     * all 8 lattice indices + trilinear weights for the whole batch
     * into corner-major SoA workspaces, then (2) a gather/interpolate
     * pass runs `#pragma omp simd` across points in register-blocked
     * lanes (Mlp::forwardBatch style) with a specialized F=2 path, so
     * each corner's weight lane streams unit-stride and the accumulators
     * stay in registers. Bit-identical to per-point encode() calls.
     *
     * `stats`, when non-null, accumulates per-level reuse counters for
     * this batch (measured host-side data reuse; see EncodeReuseStats).
     */
    void encodeBatch(const Vec3 *pos, int count, float *out,
                     int out_stride,
                     EncodeReuseStats *stats = nullptr) const;

    /** Cache of one encode() call, enough to backpropagate through it. */
    struct EncodeCache
    {
        // 8 (index, weight) pairs per level.
        std::vector<uint32_t> indices;
        std::vector<float> weights;
    };

    void encode(const Vec3 &pos, float *out, EncodeCache &cache) const;

    /** Accumulate dL/d(embeddings) given dL/d(out) of a cached encode. */
    void backward(const EncodeCache &cache, const float *dout);

    void zeroGrad();
    void adamStep(float lr, float beta1 = 0.9f, float beta2 = 0.999f,
                  float eps = 1e-8f);

    size_t paramCount() const { return params_.size(); }
    std::vector<float> &params() { return params_; }
    const std::vector<float> &params() const { return params_; }

    /** FLOPs of one encode() call (hash + interpolation), for profiles. */
    double encodeFlops() const;

  private:
    /** dst[0..F) = sum_i w[i] * table[idx[i]] at level `l` -- the one
     *  scalar interpolate shared by every encode() variant. */
    void levelInterpolate(int l, const uint32_t idx[8], const float w[8],
                          float *dst) const;

    GridGeometry geom_;
    std::vector<float> params_;
    std::vector<float> grads_;
    std::vector<float> adam_m_;
    std::vector<float> adam_v_;
    int adam_t_ = 0;
};

} // namespace asdr::nerf

#endif // ASDR_NERF_HASH_GRID_HPP
