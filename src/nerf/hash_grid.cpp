#include "nerf/hash_grid.hpp"

#include <algorithm>
#include <cmath>

#include "util/hashing.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace asdr::nerf {

GridGeometry::GridGeometry(const HashGridConfig &cfg) : cfg_(cfg)
{
    ASDR_ASSERT(cfg.levels >= 1 && cfg.levels <= 32, "bad level count");
    ASDR_ASSERT(cfg.log2_table_size >= 8 && cfg.log2_table_size <= 24,
                "bad table size");
    ASDR_ASSERT(cfg.max_resolution >= cfg.base_resolution,
                "max resolution below base");

    double growth = 1.0;
    if (cfg.levels > 1) {
        growth = std::exp((std::log(double(cfg.max_resolution)) -
                           std::log(double(cfg.base_resolution))) /
                          double(cfg.levels - 1));
    }

    uint32_t table = 1u << cfg.log2_table_size;
    uint32_t offset = 0;
    for (int l = 0; l < cfg.levels; ++l) {
        GridLevelInfo info;
        info.resolution = int(std::floor(
            double(cfg.base_resolution) * std::pow(growth, double(l)) + 0.5));
        uint64_t lattice = uint64_t(info.resolution + 1) *
                           uint64_t(info.resolution + 1) *
                           uint64_t(info.resolution + 1);
        info.dense = lattice <= table;
        info.table_entries = info.dense ? uint32_t(lattice) : table;
        info.param_offset = offset;
        offset += info.table_entries * uint32_t(cfg.features_per_level);
        levels_.push_back(info);
    }
}

uint32_t
GridGeometry::index(int l, const Vec3i &v) const
{
    const GridLevelInfo &info = levels_[size_t(l)];
    if (info.dense)
        return denseIndex(v, uint32_t(info.resolution + 1));
    return spatialHash(v, cfg_.log2_table_size);
}

int
GridGeometry::denseLevels() const
{
    int n = 0;
    for (const auto &info : levels_)
        if (info.dense)
            ++n;
    return n;
}

size_t
GridGeometry::paramCount() const
{
    size_t total = 0;
    for (const auto &info : levels_)
        total += size_t(info.table_entries) * size_t(cfg_.features_per_level);
    return total;
}

void
GridGeometry::locate(int l, const Vec3 &pos, Vec3i &voxel, Vec3 &frac) const
{
    const GridLevelInfo &info = levels_[size_t(l)];
    float res = float(info.resolution);
    // Clamp to the cube so boundary samples index valid lattice vertices.
    float sx = std::clamp(pos.x, 0.0f, 1.0f) * res;
    float sy = std::clamp(pos.y, 0.0f, 1.0f) * res;
    float sz = std::clamp(pos.z, 0.0f, 1.0f) * res;
    int vx = std::min(int(sx), info.resolution - 1);
    int vy = std::min(int(sy), info.resolution - 1);
    int vz = std::min(int(sz), info.resolution - 1);
    voxel = {vx, vy, vz};
    frac = {sx - float(vx), sy - float(vy), sz - float(vz)};
}

void
GridGeometry::voxelVertices(const Vec3i &voxel, Vec3i out[8])
{
    for (int i = 0; i < 8; ++i) {
        out[i] = {voxel.x + (i & 1), voxel.y + ((i >> 1) & 1),
                  voxel.z + ((i >> 2) & 1)};
    }
}

void
GridGeometry::trilinearWeights(const Vec3 &frac, float out[8])
{
    float wx[2] = {1.0f - frac.x, frac.x};
    float wy[2] = {1.0f - frac.y, frac.y};
    float wz[2] = {1.0f - frac.z, frac.z};
    for (int i = 0; i < 8; ++i)
        out[i] = wx[i & 1] * wy[(i >> 1) & 1] * wz[(i >> 2) & 1];
}

HashGrid::HashGrid(const HashGridConfig &cfg, uint64_t seed) : geom_(cfg)
{
    params_.resize(geom_.paramCount());
    // Instant-NGP initializes embeddings uniformly in [-1e-4, 1e-4].
    uint64_t s = seed;
    for (auto &p : params_) {
        uint64_t r = splitmix64(s);
        p = (float(r >> 40) / float(1 << 24) - 0.5f) * 2e-4f;
    }
}

void
HashGrid::encode(const Vec3 &pos, float *out) const
{
    const int F = geom_.config().features_per_level;
    for (int l = 0; l < geom_.levels(); ++l) {
        Vec3i voxel;
        Vec3 frac;
        geom_.locate(l, pos, voxel, frac);
        Vec3i verts[8];
        GridGeometry::voxelVertices(voxel, verts);
        float w[8];
        GridGeometry::trilinearWeights(frac, w);
        const float *base = params_.data() + geom_.level(l).param_offset;
        for (int f = 0; f < F; ++f)
            out[l * F + f] = 0.0f;
        for (int i = 0; i < 8; ++i) {
            const float *entry =
                base + size_t(geom_.index(l, verts[i])) * size_t(F);
            for (int f = 0; f < F; ++f)
                out[l * F + f] += w[i] * entry[f];
        }
    }
}

void
HashGrid::encodeBatch(const Vec3 *pos, int count, float *out,
                      int out_stride) const
{
    const int F = geom_.config().features_per_level;
    for (int l = 0; l < geom_.levels(); ++l) {
        const float *base = params_.data() + geom_.level(l).param_offset;
        for (int p = 0; p < count; ++p) {
            Vec3i voxel;
            Vec3 frac;
            geom_.locate(l, pos[p], voxel, frac);
            Vec3i verts[8];
            GridGeometry::voxelVertices(voxel, verts);
            float w[8];
            GridGeometry::trilinearWeights(frac, w);
            float *dst = out + size_t(p) * size_t(out_stride) +
                         size_t(l) * size_t(F);
            for (int f = 0; f < F; ++f)
                dst[f] = 0.0f;
            for (int i = 0; i < 8; ++i) {
                const float *entry =
                    base + size_t(geom_.index(l, verts[i])) * size_t(F);
                for (int f = 0; f < F; ++f)
                    dst[f] += w[i] * entry[f];
            }
        }
    }
}

void
HashGrid::encode(const Vec3 &pos, float *out, EncodeCache &cache) const
{
    const int F = geom_.config().features_per_level;
    const size_t slots = size_t(geom_.levels()) * 8;
    cache.indices.resize(slots);
    cache.weights.resize(slots);
    for (int l = 0; l < geom_.levels(); ++l) {
        Vec3i voxel;
        Vec3 frac;
        geom_.locate(l, pos, voxel, frac);
        Vec3i verts[8];
        GridGeometry::voxelVertices(voxel, verts);
        float w[8];
        GridGeometry::trilinearWeights(frac, w);
        const float *base = params_.data() + geom_.level(l).param_offset;
        for (int f = 0; f < F; ++f)
            out[l * F + f] = 0.0f;
        for (int i = 0; i < 8; ++i) {
            uint32_t idx = geom_.index(l, verts[i]);
            cache.indices[size_t(l) * 8 + i] = idx;
            cache.weights[size_t(l) * 8 + i] = w[i];
            const float *entry = base + size_t(idx) * size_t(F);
            for (int f = 0; f < F; ++f)
                out[l * F + f] += w[i] * entry[f];
        }
    }
}

void
HashGrid::backward(const EncodeCache &cache, const float *dout)
{
    if (grads_.empty())
        grads_.resize(params_.size(), 0.0f);
    const int F = geom_.config().features_per_level;
    for (int l = 0; l < geom_.levels(); ++l) {
        float *base = grads_.data() + geom_.level(l).param_offset;
        for (int i = 0; i < 8; ++i) {
            uint32_t idx = cache.indices[size_t(l) * 8 + i];
            float w = cache.weights[size_t(l) * 8 + i];
            for (int f = 0; f < F; ++f)
                base[size_t(idx) * size_t(F) + f] += w * dout[l * F + f];
        }
    }
}

void
HashGrid::zeroGrad()
{
    std::fill(grads_.begin(), grads_.end(), 0.0f);
}

void
HashGrid::adamStep(float lr, float beta1, float beta2, float eps)
{
    if (grads_.empty())
        return;
    if (adam_m_.empty()) {
        adam_m_.resize(params_.size(), 0.0f);
        adam_v_.resize(params_.size(), 0.0f);
    }
    ++adam_t_;
    float bc1 = 1.0f - std::pow(beta1, float(adam_t_));
    float bc2 = 1.0f - std::pow(beta2, float(adam_t_));
    for (size_t i = 0; i < params_.size(); ++i) {
        float g = grads_[i];
        if (g == 0.0f)
            continue; // sparse update: untouched embeddings skip the step
        adam_m_[i] = beta1 * adam_m_[i] + (1.0f - beta1) * g;
        adam_v_[i] = beta2 * adam_v_[i] + (1.0f - beta2) * g * g;
        float mhat = adam_m_[i] / bc1;
        float vhat = adam_v_[i] / bc2;
        params_[i] -= lr * mhat / (std::sqrt(vhat) + eps);
    }
}

double
HashGrid::encodeFlops() const
{
    // Per level: weight computation (~12), 8 hash/dense index computations
    // (~6 each), 8 vertices x F features x 2 (mul+add).
    const int F = geom_.config().features_per_level;
    return double(geom_.levels()) * (12.0 + 8.0 * 6.0 + 8.0 * F * 2.0);
}

} // namespace asdr::nerf
