#include "nerf/hash_grid.hpp"

#include <algorithm>
#include <cmath>

#include "util/hashing.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace asdr::nerf {

GridGeometry::GridGeometry(const HashGridConfig &cfg) : cfg_(cfg)
{
    ASDR_ASSERT(cfg.levels >= 1 && cfg.levels <= 32, "bad level count");
    ASDR_ASSERT(cfg.log2_table_size >= 8 && cfg.log2_table_size <= 24,
                "bad table size");
    ASDR_ASSERT(cfg.max_resolution >= cfg.base_resolution,
                "max resolution below base");

    double growth = 1.0;
    if (cfg.levels > 1) {
        growth = std::exp((std::log(double(cfg.max_resolution)) -
                           std::log(double(cfg.base_resolution))) /
                          double(cfg.levels - 1));
    }

    uint32_t table = 1u << cfg.log2_table_size;
    uint32_t offset = 0;
    for (int l = 0; l < cfg.levels; ++l) {
        GridLevelInfo info;
        info.resolution = int(std::floor(
            double(cfg.base_resolution) * std::pow(growth, double(l)) + 0.5));
        uint64_t lattice = uint64_t(info.resolution + 1) *
                           uint64_t(info.resolution + 1) *
                           uint64_t(info.resolution + 1);
        info.dense = lattice <= table;
        info.table_entries = info.dense ? uint32_t(lattice) : table;
        info.param_offset = offset;
        offset += info.table_entries * uint32_t(cfg.features_per_level);
        levels_.push_back(info);
    }
}

uint32_t
GridGeometry::index(int l, const Vec3i &v) const
{
    const GridLevelInfo &info = levels_[size_t(l)];
    if (info.dense)
        return denseIndex(v, uint32_t(info.resolution + 1));
    return spatialHash(v, cfg_.log2_table_size);
}

int
GridGeometry::denseLevels() const
{
    int n = 0;
    for (const auto &info : levels_)
        if (info.dense)
            ++n;
    return n;
}

size_t
GridGeometry::paramCount() const
{
    size_t total = 0;
    for (const auto &info : levels_)
        total += size_t(info.table_entries) * size_t(cfg_.features_per_level);
    return total;
}

void
GridGeometry::locate(int l, const Vec3 &pos, Vec3i &voxel, Vec3 &frac) const
{
    const GridLevelInfo &info = levels_[size_t(l)];
    float res = float(info.resolution);
    // Clamp to the cube so boundary samples index valid lattice vertices.
    float sx = std::clamp(pos.x, 0.0f, 1.0f) * res;
    float sy = std::clamp(pos.y, 0.0f, 1.0f) * res;
    float sz = std::clamp(pos.z, 0.0f, 1.0f) * res;
    int vx = std::min(int(sx), info.resolution - 1);
    int vy = std::min(int(sy), info.resolution - 1);
    int vz = std::min(int(sz), info.resolution - 1);
    voxel = {vx, vy, vz};
    frac = {sx - float(vx), sy - float(vy), sz - float(vz)};
}

void
GridGeometry::voxelVertices(const Vec3i &voxel, Vec3i out[8])
{
    for (int i = 0; i < 8; ++i) {
        out[i] = {voxel.x + (i & 1), voxel.y + ((i >> 1) & 1),
                  voxel.z + ((i >> 2) & 1)};
    }
}

void
GridGeometry::trilinearWeights(const Vec3 &frac, float out[8])
{
    float wx[2] = {1.0f - frac.x, frac.x};
    float wy[2] = {1.0f - frac.y, frac.y};
    float wz[2] = {1.0f - frac.z, frac.z};
    for (int i = 0; i < 8; ++i)
        out[i] = wx[i & 1] * wy[(i >> 1) & 1] * wz[(i >> 2) & 1];
}

void
GridGeometry::gatherSetup(int l, const Vec3 &pos, uint32_t idx[8],
                          float w[8]) const
{
    const GridLevelInfo &info = levels_[size_t(l)];
    Vec3i voxel;
    Vec3 frac;
    locate(l, pos, voxel, frac);
    trilinearWeights(frac, w);
    if (info.dense) {
        // denseIndex(v) = (z*V + y)*V + x; the 8 corners share per-axis
        // partial sums ((z[+1])*V + y[+1])*V and x[+1].
        const uint32_t V = uint32_t(info.resolution + 1);
        const uint32_t x0 = uint32_t(voxel.x);
        const uint32_t x1 = x0 + 1u;
        const uint32_t zv0 = uint32_t(voxel.z) * V;
        const uint32_t zv1 = (uint32_t(voxel.z) + 1u) * V;
        const uint32_t y0 = uint32_t(voxel.y);
        const uint32_t y1 = y0 + 1u;
        const uint32_t r0 = (zv0 + y0) * V;
        const uint32_t r1 = (zv0 + y1) * V;
        const uint32_t r2 = (zv1 + y0) * V;
        const uint32_t r3 = (zv1 + y1) * V;
        idx[0] = r0 + x0;
        idx[1] = r0 + x1;
        idx[2] = r1 + x0;
        idx[3] = r1 + x1;
        idx[4] = r2 + x0;
        idx[5] = r2 + x1;
        idx[6] = r3 + x0;
        idx[7] = r3 + x1;
    } else {
        // Eq. (2) hash of all 8 corners from 6 per-axis products:
        // (x+1)*pi = x*pi + pi in uint32, so the corner hashes are XORs
        // of precomputed halves -- identical bits to spatialHash().
        const uint32_t mask = (1u << cfg_.log2_table_size) - 1u;
        const uint32_t hx0 = uint32_t(voxel.x) * kHashPrime1;
        const uint32_t hx1 = hx0 + kHashPrime1;
        const uint32_t hy0 = uint32_t(voxel.y) * kHashPrime2;
        const uint32_t hy1 = hy0 + kHashPrime2;
        const uint32_t hz0 = uint32_t(voxel.z) * kHashPrime3;
        const uint32_t hz1 = hz0 + kHashPrime3;
        idx[0] = (hx0 ^ hy0 ^ hz0) & mask;
        idx[1] = (hx1 ^ hy0 ^ hz0) & mask;
        idx[2] = (hx0 ^ hy1 ^ hz0) & mask;
        idx[3] = (hx1 ^ hy1 ^ hz0) & mask;
        idx[4] = (hx0 ^ hy0 ^ hz1) & mask;
        idx[5] = (hx1 ^ hy0 ^ hz1) & mask;
        idx[6] = (hx0 ^ hy1 ^ hz1) & mask;
        idx[7] = (hx1 ^ hy1 ^ hz1) & mask;
    }
}

void
EncodeReuseStats::reset(int levels)
{
    lookups.assign(size_t(levels), 0);
    unique.assign(size_t(levels), 0);
    coherent.assign(size_t(levels), 0);
    cache_hits = cache_misses = cache_evictions = cache_epoch_drops = 0;
}

void
EncodeReuseStats::merge(const EncodeReuseStats &o)
{
    if (lookups.empty())
        reset(int(o.lookups.size()));
    ASDR_ASSERT(lookups.size() == o.lookups.size(),
                "merging reuse stats of different level counts");
    for (size_t l = 0; l < o.lookups.size(); ++l) {
        lookups[l] += o.lookups[l];
        unique[l] += o.unique[l];
        coherent[l] += o.coherent[l];
    }
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    cache_evictions += o.cache_evictions;
    cache_epoch_drops += o.cache_epoch_drops;
}

double
EncodeReuseStats::reuseFactor(int level) const
{
    const size_t l = size_t(level);
    if (l >= unique.size() || unique[l] == 0)
        return 1.0;
    return double(lookups[l]) / double(unique[l]);
}

double
EncodeReuseStats::coherentFraction(int level) const
{
    const size_t l = size_t(level);
    if (l >= lookups.size() || lookups[l] == 0)
        return 0.0;
    return double(coherent[l]) / double(lookups[l]);
}

HashGrid::HashGrid(const HashGridConfig &cfg, uint64_t seed) : geom_(cfg)
{
    params_.resize(geom_.paramCount());
    // Instant-NGP initializes embeddings uniformly in [-1e-4, 1e-4].
    uint64_t s = seed;
    for (auto &p : params_) {
        uint64_t r = splitmix64(s);
        p = (float(r >> 40) / float(1 << 24) - 0.5f) * 2e-4f;
    }
}

void
HashGrid::levelInterpolate(int l, const uint32_t idx[8], const float w[8],
                           float *dst) const
{
    const int F = geom_.config().features_per_level;
    const float *base = params_.data() + geom_.level(l).param_offset;
    for (int f = 0; f < F; ++f)
        dst[f] = 0.0f;
    for (int i = 0; i < 8; ++i) {
        const float *entry = base + size_t(idx[i]) * size_t(F);
        for (int f = 0; f < F; ++f)
            dst[f] += w[i] * entry[f];
    }
}

void
HashGrid::encode(const Vec3 &pos, float *out) const
{
    const int F = geom_.config().features_per_level;
    for (int l = 0; l < geom_.levels(); ++l) {
        uint32_t idx[8];
        float w[8];
        geom_.gatherSetup(l, pos, idx, w);
        levelInterpolate(l, idx, w, out + size_t(l) * size_t(F));
    }
}

namespace {

/** Points per two-pass slice: the corner-major index/weight workspace
 *  of one slice is 8 * kEncChunk * 8 bytes = 32 KB, so it stays cache-
 *  resident between the setup and gather passes for any batch size. */
constexpr int kEncChunk = 512;

/** Points per register block of the gather/interpolate pass. */
constexpr int kEncBlock = 64;

} // namespace

void
HashGrid::encodeBatch(const Vec3 *pos, int count, float *out,
                      int out_stride, EncodeReuseStats *stats) const
{
    const int F = geom_.config().features_per_level;
    const int L = geom_.levels();
    if (count <= 0)
        return;
    if (stats && int(stats->lookups.size()) != L)
        stats->reset(L);

    // Corner-major SoA workspaces for one slice: corner i of slice
    // point p lives at [i * kEncChunk + p], so the gather pass reads
    // each corner's index/weight lane unit-stride.
    thread_local std::vector<uint32_t> ws_idx;
    thread_local std::vector<float> ws_w;
    thread_local std::vector<uint32_t> ws_sorted; // stats scratch
    thread_local std::vector<float> ws_acc;       // generic-F lanes
    ws_idx.resize(8 * size_t(kEncChunk));
    ws_w.resize(8 * size_t(kEncChunk));

    for (int l = 0; l < L; ++l) {
        const float *__restrict base =
            params_.data() + geom_.level(l).param_offset;
        if (stats) {
            ws_sorted.clear();
            ws_sorted.reserve(size_t(count) * 8);
        }
        uint32_t prev[8] = {};
        uint64_t coherent = 0;
        bool has_prev = false;

        for (int c0 = 0; c0 < count; c0 += kEncChunk) {
            const int cn = std::min(kEncChunk, count - c0);

            // ---- pass 1: lattice indices + trilinear weights, SoA ----
            for (int p = 0; p < cn; ++p) {
                uint32_t idx[8];
                float w[8];
                geom_.gatherSetup(l, pos[c0 + p], idx, w);
                for (int i = 0; i < 8; ++i) {
                    ws_idx[size_t(i) * kEncChunk + size_t(p)] = idx[i];
                    ws_w[size_t(i) * kEncChunk + size_t(p)] = w[i];
                }
            }

            if (stats) {
                for (int i = 0; i < 8; ++i) {
                    const uint32_t *lane = ws_idx.data() +
                                           size_t(i) * kEncChunk;
                    if (has_prev && lane[0] == prev[i])
                        ++coherent;
                    for (int p = 1; p < cn; ++p)
                        if (lane[p] == lane[p - 1])
                            ++coherent;
                    prev[i] = lane[cn - 1];
                    ws_sorted.insert(ws_sorted.end(), lane, lane + cn);
                }
                has_prev = true;
            }

            // ---- pass 2: gather + interpolate, register-blocked
            // across points. Accumulation runs corner 0..7 per output
            // feature, exactly the scalar order, so results are
            // bit-identical; the level's table segment is the only
            // gathered region, so it alone streams through the cache.
            if (F == 2) {
                // The common NGP config: both features of a corner
                // share one 8-byte entry load; accumulators stay in
                // registers.
                for (int p0 = 0; p0 < cn; p0 += kEncBlock) {
                    const int bn = std::min(kEncBlock, cn - p0);
                    float acc0[kEncBlock];
                    float acc1[kEncBlock];
                    for (int p = 0; p < bn; ++p) {
                        acc0[p] = 0.0f;
                        acc1[p] = 0.0f;
                    }
                    for (int i = 0; i < 8; ++i) {
                        const uint32_t *__restrict idx =
                            ws_idx.data() + size_t(i) * kEncChunk + p0;
                        const float *__restrict wv =
                            ws_w.data() + size_t(i) * kEncChunk + p0;
#pragma omp simd
                        for (int p = 0; p < bn; ++p) {
                            const float *__restrict e =
                                base + size_t(idx[p]) * 2;
                            acc0[p] += wv[p] * e[0];
                            acc1[p] += wv[p] * e[1];
                        }
                    }
                    for (int p = 0; p < bn; ++p) {
                        float *dst = out +
                                     size_t(c0 + p0 + p) *
                                         size_t(out_stride) +
                                     size_t(l) * 2;
                        dst[0] = acc0[p];
                        dst[1] = acc1[p];
                    }
                }
            } else {
                ws_acc.resize(size_t(F) * kEncBlock);
                for (int p0 = 0; p0 < cn; p0 += kEncBlock) {
                    const int bn = std::min(kEncBlock, cn - p0);
                    std::fill(ws_acc.begin(),
                              ws_acc.begin() + size_t(F) * kEncBlock,
                              0.0f);
                    for (int i = 0; i < 8; ++i) {
                        const uint32_t *__restrict idx =
                            ws_idx.data() + size_t(i) * kEncChunk + p0;
                        const float *__restrict wv =
                            ws_w.data() + size_t(i) * kEncChunk + p0;
                        for (int f = 0; f < F; ++f) {
                            float *__restrict lane =
                                ws_acc.data() + size_t(f) * kEncBlock;
#pragma omp simd
                            for (int p = 0; p < bn; ++p)
                                lane[p] += wv[p] *
                                           base[size_t(idx[p]) *
                                                    size_t(F) +
                                                size_t(f)];
                        }
                    }
                    for (int p = 0; p < bn; ++p) {
                        float *dst = out +
                                     size_t(c0 + p0 + p) *
                                         size_t(out_stride) +
                                     size_t(l) * size_t(F);
                        for (int f = 0; f < F; ++f)
                            dst[f] =
                                ws_acc[size_t(f) * kEncBlock + size_t(p)];
                    }
                }
            }
        }

        if (stats) {
            stats->lookups[size_t(l)] += uint64_t(count) * 8;
            stats->coherent[size_t(l)] += coherent;
            std::sort(ws_sorted.begin(), ws_sorted.end());
            uint64_t uniq = 0;
            for (size_t k = 0; k < ws_sorted.size(); ++k)
                if (k == 0 || ws_sorted[k] != ws_sorted[k - 1])
                    ++uniq;
            stats->unique[size_t(l)] += uniq;
        }
    }
}

void
HashGrid::encode(const Vec3 &pos, float *out, EncodeCache &cache) const
{
    const int F = geom_.config().features_per_level;
    const size_t slots = size_t(geom_.levels()) * 8;
    cache.indices.resize(slots);
    cache.weights.resize(slots);
    for (int l = 0; l < geom_.levels(); ++l) {
        uint32_t idx[8];
        float w[8];
        geom_.gatherSetup(l, pos, idx, w);
        for (int i = 0; i < 8; ++i) {
            cache.indices[size_t(l) * 8 + size_t(i)] = idx[i];
            cache.weights[size_t(l) * 8 + size_t(i)] = w[i];
        }
        levelInterpolate(l, idx, w, out + size_t(l) * size_t(F));
    }
}

void
HashGrid::backward(const EncodeCache &cache, const float *dout)
{
    if (grads_.empty())
        grads_.resize(params_.size(), 0.0f);
    const int F = geom_.config().features_per_level;
    for (int l = 0; l < geom_.levels(); ++l) {
        float *base = grads_.data() + geom_.level(l).param_offset;
        for (int i = 0; i < 8; ++i) {
            uint32_t idx = cache.indices[size_t(l) * 8 + i];
            float w = cache.weights[size_t(l) * 8 + i];
            for (int f = 0; f < F; ++f)
                base[size_t(idx) * size_t(F) + f] += w * dout[l * F + f];
        }
    }
}

void
HashGrid::zeroGrad()
{
    std::fill(grads_.begin(), grads_.end(), 0.0f);
}

void
HashGrid::adamStep(float lr, float beta1, float beta2, float eps)
{
    if (grads_.empty())
        return;
    if (adam_m_.empty()) {
        adam_m_.resize(params_.size(), 0.0f);
        adam_v_.resize(params_.size(), 0.0f);
    }
    ++adam_t_;
    float bc1 = 1.0f - std::pow(beta1, float(adam_t_));
    float bc2 = 1.0f - std::pow(beta2, float(adam_t_));
    for (size_t i = 0; i < params_.size(); ++i) {
        float g = grads_[i];
        if (g == 0.0f)
            continue; // sparse update: untouched embeddings skip the step
        adam_m_[i] = beta1 * adam_m_[i] + (1.0f - beta1) * g;
        adam_v_[i] = beta2 * adam_v_[i] + (1.0f - beta2) * g * g;
        float mhat = adam_m_[i] / bc1;
        float vhat = adam_v_[i] / bc2;
        params_[i] -= lr * mhat / (std::sqrt(vhat) + eps);
    }
}

double
HashGrid::encodeFlops() const
{
    // Per level: weight computation (~12), 8 hash/dense index computations
    // (~6 each), 8 vertices x F features x 2 (mul+add).
    const int F = geom_.config().features_per_level;
    return double(geom_.levels()) * (12.0 + 8.0 * 6.0 + 8.0 * F * 2.0);
}

} // namespace asdr::nerf
