#include "nerf/procedural_field.hpp"

#include "nerf/sh_encoding.hpp"

namespace asdr::nerf {

namespace {

FieldCosts
referenceCosts(const NgpModelConfig &model, const GridGeometry &geom)
{
    FieldCosts costs;
    // Encoding: per level, weight computation + 8 index computations +
    // 8 x F x 2 interpolation FLOPs (same formula as HashGrid).
    const int F = model.grid.features_per_level;
    costs.encode_flops =
        double(model.grid.levels) * (12.0 + 8.0 * 6.0 + 8.0 * F * 2.0);

    auto shapes = [](int input, const std::vector<int> &hidden, int output) {
        std::vector<LayerShape> out;
        std::vector<int> dims;
        dims.push_back(input);
        for (int h : hidden)
            dims.push_back(h);
        dims.push_back(output);
        for (size_t i = 0; i + 1 < dims.size(); ++i)
            out.push_back({dims[i], dims[i + 1]});
        return out;
    };
    costs.density_layers =
        shapes(model.grid.levels * F, model.density_hidden, kGeoFeatures);
    costs.color_layers =
        shapes((kGeoFeatures - 1) + kShCoeffs, model.color_hidden, 3);

    auto macs = [](const std::vector<LayerShape> &layers) {
        double m = 0.0;
        for (const auto &l : layers)
            m += double(l.in) * double(l.out);
        return m;
    };
    costs.density_flops = 2.0 * macs(costs.density_layers);
    costs.color_flops = 2.0 * macs(costs.color_layers) + shEncodeFlops();
    costs.lookups_per_point = geom.levels() * 8;
    return costs;
}

} // namespace

ProceduralField::ProceduralField(const scene::AnalyticScene &scene,
                                 const NgpModelConfig &model)
    : scene_(scene), geom_(model.grid), costs_(referenceCosts(model, geom_))
{
}

DensityOutput
ProceduralField::density(const Vec3 &pos) const
{
    DensityOutput out;
    out.sigma = scene_.density(pos);
    // Geometry features carry the position forward so color() can query
    // the analytic field without re-deriving it.
    out.geo[0] = out.sigma;
    out.geo[1] = pos.x;
    out.geo[2] = pos.y;
    out.geo[3] = pos.z;
    return out;
}

Vec3
ProceduralField::color(const Vec3 &pos, const Vec3 &dir,
                       const DensityOutput &den) const
{
    (void)den;
    return scene_.sample(pos, dir).color;
}

void
ProceduralField::densityBatch(const Vec3 *pos, int count,
                              DensityOutput *out) const
{
    for (int p = 0; p < count; ++p)
        out[p] = density(pos[p]);
}

void
ProceduralField::colorBatch(const Vec3 *pos, const Vec3 &dir,
                            const DensityOutput *den, int count,
                            Vec3 *out) const
{
    for (int p = 0; p < count; ++p)
        out[p] = color(pos[p], dir, den[p]);
}

void
ProceduralField::traceLookups(const Vec3 &pos, LookupSink &sink) const
{
    VertexLookup lookups[32 * 8];
    size_t n = 0;
    for (int l = 0; l < geom_.levels(); ++l) {
        Vec3i voxel;
        Vec3 frac;
        geom_.locate(l, pos, voxel, frac);
        Vec3i verts[8];
        GridGeometry::voxelVertices(voxel, verts);
        for (int i = 0; i < 8; ++i) {
            lookups[n].level = uint16_t(l);
            lookups[n].vertex = verts[i];
            lookups[n].index = geom_.index(l, verts[i]);
            ++n;
        }
    }
    sink.onPointLookups(lookups, n);
}

TableSchema
ProceduralField::tableSchema() const
{
    return schemaFromGeometry(geom_);
}

FieldCosts
ProceduralField::costs() const
{
    return costs_;
}

std::string
ProceduralField::describe() const
{
    return "Procedural(" + scene_.info().name + ")";
}

} // namespace asdr::nerf
