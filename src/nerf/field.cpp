#include "nerf/field.hpp"

#include "nerf/hash_grid.hpp"

namespace asdr::nerf {

void
RadianceField::densityBatch(const Vec3 *pos, int count,
                            DensityOutput *out) const
{
    for (int p = 0; p < count; ++p)
        out[p] = density(pos[p]);
}

void
RadianceField::colorBatch(const Vec3 *pos, const Vec3 &dir,
                          const DensityOutput *den, int count,
                          Vec3 *out) const
{
    for (int p = 0; p < count; ++p)
        out[p] = color(pos[p], dir, den[p]);
}

TableSchema
schemaFromGeometry(const GridGeometry &geom)
{
    TableSchema schema;
    schema.hash_table_entries = geom.tableSize();
    schema.features = geom.config().features_per_level;
    for (int l = 0; l < geom.levels(); ++l) {
        const GridLevelInfo &info = geom.level(l);
        TableInfo table;
        table.entries = info.table_entries;
        table.dense = info.dense;
        table.verts_per_axis = info.resolution + 1;
        table.dims = 3;
        schema.tables.push_back(table);
    }
    return schema;
}

} // namespace asdr::nerf
