#include "nerf/tensorf.hpp"

#include <algorithm>
#include <cmath>

#include "nerf/sh_encoding.hpp"
#include "nerf/trainer.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace asdr::nerf {

namespace {

float
softplus(float x)
{
    if (x > 20.0f)
        return x;
    return std::log1p(std::exp(x));
}

float
sigmoid(float x)
{
    return 1.0f / (1.0f + std::exp(-x));
}

} // namespace

void
TensorfField::ParamTensor::init(size_t n, float scale, uint64_t &seed_state)
{
    value.resize(n);
    for (auto &p : value) {
        uint64_t r = splitmix64(seed_state);
        p = (float(r >> 40) / float(1 << 24) - 0.5f) * 2.0f * scale;
    }
}

void
TensorfField::ParamTensor::zeroGrad()
{
    std::fill(grad.begin(), grad.end(), 0.0f);
}

void
TensorfField::ParamTensor::adamStep(float lr, int t)
{
    if (grad.empty())
        return;
    if (m.empty()) {
        m.assign(value.size(), 0.0f);
        v.assign(value.size(), 0.0f);
    }
    const float beta1 = 0.9f, beta2 = 0.999f, eps = 1e-8f;
    float bc1 = 1.0f - std::pow(beta1, float(t));
    float bc2 = 1.0f - std::pow(beta2, float(t));
    for (size_t i = 0; i < value.size(); ++i) {
        float g = grad[i];
        if (g == 0.0f)
            continue;
        m[i] = beta1 * m[i] + (1.0f - beta1) * g;
        v[i] = beta2 * v[i] + (1.0f - beta2) * g * g;
        value[i] -= lr * (m[i] / bc1) / (std::sqrt(v[i] / bc2) + eps);
    }
}

TensorfField::TensorfField(const TensorfConfig &cfg, uint64_t seed)
    : cfg_(cfg),
      color_mlp_({3 * cfg.appearance_components + kShCoeffs,
                  cfg.color_hidden, 3},
                 seed ^ 0x7E45ull)
{
    ASDR_ASSERT(cfg.resolution >= 4, "TensoRF resolution too small");
    uint64_t s = seed;
    size_t plane_n = size_t(cfg.resolution) * size_t(cfg.resolution);
    for (int o = 0; o < 3; ++o) {
        den_planes_[o].init(plane_n * size_t(cfg.density_components), 0.1f,
                            s);
        den_lines_[o].init(size_t(cfg.resolution) *
                               size_t(cfg.density_components),
                           0.1f, s);
        app_planes_[o].init(plane_n * size_t(cfg.appearance_components),
                            0.1f, s);
        app_lines_[o].init(size_t(cfg.resolution) *
                               size_t(cfg.appearance_components),
                           0.1f, s);
    }
}

void
TensorfField::orientationCoords(int o, const Vec3 &pos, float &u, float &v,
                                float &w)
{
    switch (o) {
      case 0: u = pos.x; v = pos.y; w = pos.z; break; // XY plane, Z line
      case 1: u = pos.x; v = pos.z; w = pos.y; break; // XZ plane, Y line
      default: u = pos.y; v = pos.z; w = pos.x; break; // YZ plane, X line
    }
}

void
TensorfField::readPlane(const ParamTensor &plane, int comps, float u,
                        float v, float *out) const
{
    const int res = cfg_.resolution;
    float su = std::clamp(u, 0.0f, 1.0f) * float(res - 1);
    float sv = std::clamp(v, 0.0f, 1.0f) * float(res - 1);
    int x0 = std::min(int(su), res - 2);
    int y0 = std::min(int(sv), res - 2);
    float fx = su - float(x0);
    float fy = sv - float(y0);
    const size_t plane_n = size_t(res) * size_t(res);
    for (int c = 0; c < comps; ++c) {
        const float *base = plane.value.data() + size_t(c) * plane_n;
        float v00 = base[size_t(y0) * res + x0];
        float v10 = base[size_t(y0) * res + x0 + 1];
        float v01 = base[size_t(y0 + 1) * res + x0];
        float v11 = base[size_t(y0 + 1) * res + x0 + 1];
        out[c] = lerp(lerp(v00, v10, fx), lerp(v01, v11, fx), fy);
    }
}

void
TensorfField::readLine(const ParamTensor &line, int comps, float w,
                       float *out) const
{
    const int res = cfg_.resolution;
    float sw = std::clamp(w, 0.0f, 1.0f) * float(res - 1);
    int z0 = std::min(int(sw), res - 2);
    float fz = sw - float(z0);
    for (int c = 0; c < comps; ++c) {
        const float *base = line.value.data() + size_t(c) * size_t(res);
        out[c] = lerp(base[z0], base[z0 + 1], fz);
    }
}

void
TensorfField::accumPlaneGrad(ParamTensor &plane, int comps, float u,
                             float v, const float *dout)
{
    if (plane.grad.empty())
        plane.grad.assign(plane.value.size(), 0.0f);
    const int res = cfg_.resolution;
    float su = std::clamp(u, 0.0f, 1.0f) * float(res - 1);
    float sv = std::clamp(v, 0.0f, 1.0f) * float(res - 1);
    int x0 = std::min(int(su), res - 2);
    int y0 = std::min(int(sv), res - 2);
    float fx = su - float(x0);
    float fy = sv - float(y0);
    const size_t plane_n = size_t(res) * size_t(res);
    for (int c = 0; c < comps; ++c) {
        float *base = plane.grad.data() + size_t(c) * plane_n;
        float d = dout[c];
        base[size_t(y0) * res + x0] += d * (1 - fx) * (1 - fy);
        base[size_t(y0) * res + x0 + 1] += d * fx * (1 - fy);
        base[size_t(y0 + 1) * res + x0] += d * (1 - fx) * fy;
        base[size_t(y0 + 1) * res + x0 + 1] += d * fx * fy;
    }
}

void
TensorfField::accumLineGrad(ParamTensor &line, int comps, float w,
                            const float *dout)
{
    if (line.grad.empty())
        line.grad.assign(line.value.size(), 0.0f);
    const int res = cfg_.resolution;
    float sw = std::clamp(w, 0.0f, 1.0f) * float(res - 1);
    int z0 = std::min(int(sw), res - 2);
    float fz = sw - float(z0);
    for (int c = 0; c < comps; ++c) {
        float *base = line.grad.data() + size_t(c) * size_t(res);
        base[z0] += dout[c] * (1 - fz);
        base[z0 + 1] += dout[c] * fz;
    }
}

DensityOutput
TensorfField::density(const Vec3 &pos) const
{
    const int C = cfg_.density_components;
    float pv[16], lv[16];
    float raw = 0.0f;
    for (int o = 0; o < 3; ++o) {
        float u, v, w;
        orientationCoords(o, pos, u, v, w);
        readPlane(den_planes_[o], C, u, v, pv);
        readLine(den_lines_[o], C, w, lv);
        for (int c = 0; c < C; ++c)
            raw += pv[c] * lv[c];
    }
    DensityOutput out;
    out.sigma = softplus(raw - 1.0f);
    out.geo[0] = raw;
    return out;
}

Vec3
TensorfField::color(const Vec3 &pos, const Vec3 &dir,
                    const DensityOutput &den) const
{
    (void)den;
    const int C = cfg_.appearance_components;
    float cin[kMaxGeoFeatures + kShCoeffs];
    float pv[32], lv[32];
    for (int o = 0; o < 3; ++o) {
        float u, v, w;
        orientationCoords(o, pos, u, v, w);
        readPlane(app_planes_[o], C, u, v, pv);
        readLine(app_lines_[o], C, w, lv);
        for (int c = 0; c < C; ++c)
            cin[o * C + c] = pv[c] * lv[c];
    }
    shEncode(dir, cin + 3 * C);

    float logits[3];
    color_mlp_.forward(cin, logits);
    return {sigmoid(logits[0]), sigmoid(logits[1]), sigmoid(logits[2])};
}

void
TensorfField::colorBatch(const Vec3 *pos, const Vec3 &dir,
                         const DensityOutput *den, int count,
                         Vec3 *out) const
{
    (void)den;
    const int C = cfg_.appearance_components;
    const int ci = 3 * C + kShCoeffs;
    thread_local std::vector<float> cin, logits;
    cin.resize(size_t(ci) * size_t(count));
    logits.resize(3 * size_t(count));

    float sh[kShCoeffs];
    shEncode(dir, sh);
    float pv[32], lv[32];
    for (int p = 0; p < count; ++p) {
        float *row = cin.data() + size_t(p) * size_t(ci);
        for (int o = 0; o < 3; ++o) {
            float u, v, w;
            orientationCoords(o, pos[p], u, v, w);
            readPlane(app_planes_[o], C, u, v, pv);
            readLine(app_lines_[o], C, w, lv);
            for (int c = 0; c < C; ++c)
                row[o * C + c] = pv[c] * lv[c];
        }
        std::copy(sh, sh + kShCoeffs, row + 3 * C);
    }

    color_mlp_.forwardBatch(cin.data(), count, ci, logits.data(), 3);
    for (int p = 0; p < count; ++p) {
        const float *l = logits.data() + size_t(p) * 3;
        out[p] = {sigmoid(l[0]), sigmoid(l[1]), sigmoid(l[2])};
    }
}

void
TensorfField::traceLookups(const Vec3 &pos, LookupSink &sink) const
{
    // Table ids: 0-2 density planes, 3-5 density lines, 6-8 appearance
    // planes, 9-11 appearance lines. One lookup per texel (components
    // are channels of one entry).
    VertexLookup lookups[3 * 6 * 2];
    size_t n = 0;
    const int res = cfg_.resolution;
    for (int set = 0; set < 2; ++set) {
        for (int o = 0; o < 3; ++o) {
            float u, v, w;
            orientationCoords(o, pos, u, v, w);
            float su = std::clamp(u, 0.0f, 1.0f) * float(res - 1);
            float sv = std::clamp(v, 0.0f, 1.0f) * float(res - 1);
            float sw = std::clamp(w, 0.0f, 1.0f) * float(res - 1);
            int x0 = std::min(int(su), res - 2);
            int y0 = std::min(int(sv), res - 2);
            int z0 = std::min(int(sw), res - 2);
            uint16_t plane_table = uint16_t(set * 6 + o);
            uint16_t line_table = uint16_t(set * 6 + 3 + o);
            for (int i = 0; i < 4; ++i) {
                int x = x0 + (i & 1);
                int y = y0 + (i >> 1);
                lookups[n].level = plane_table;
                lookups[n].vertex = {x, y, 0};
                lookups[n].index = uint32_t(y) * uint32_t(res) + uint32_t(x);
                ++n;
            }
            for (int i = 0; i < 2; ++i) {
                lookups[n].level = line_table;
                lookups[n].vertex = {z0 + i, 0, 0};
                lookups[n].index = uint32_t(z0 + i);
                ++n;
            }
        }
    }
    sink.onPointLookups(lookups, n);
}

TableSchema
TensorfField::tableSchema() const
{
    TableSchema schema;
    schema.hash_table_entries = 0; // no hashed tables in TensoRF
    schema.features = cfg_.appearance_components;
    const int res = cfg_.resolution;
    auto add = [&](bool is_plane) {
        TableInfo info;
        info.dense = true;
        info.verts_per_axis = res;
        info.dims = is_plane ? 2 : 1;
        info.entries = is_plane ? uint32_t(res) * uint32_t(res)
                                : uint32_t(res);
        schema.tables.push_back(info);
    };
    for (int set = 0; set < 2; ++set) {
        for (int o = 0; o < 3; ++o) {
            (void)o;
            add(true);
        }
        for (int o = 0; o < 3; ++o) {
            (void)o;
            add(false);
        }
    }
    return schema;
}

FieldCosts
TensorfField::costs() const
{
    FieldCosts costs;
    const int Cd = cfg_.density_components;
    const int Ca = cfg_.appearance_components;
    // Bilinear plane read: 4 texels x comps x ~3 FLOPs + weights; line
    // read: 2 x comps x 2; product-sum per component.
    costs.encode_flops =
        3.0 * ((4.0 * Cd * 3 + 2.0 * Cd * 2 + 2.0 * Cd) +
               (4.0 * Ca * 3 + 2.0 * Ca * 2 + 2.0 * Ca)) + 24.0;
    costs.density_flops = 3.0 * Cd * 2.0 + 10.0; // rank reduction only
    costs.color_flops = 2.0 * color_mlp_.forwardMacs() + shEncodeFlops();
    costs.color_layers.push_back(
        {3 * Ca + kShCoeffs, cfg_.color_hidden.empty()
                                  ? 3
                                  : cfg_.color_hidden.front()});
    for (size_t i = 0; i + 1 < cfg_.color_hidden.size(); ++i)
        costs.color_layers.push_back(
            {cfg_.color_hidden[i], cfg_.color_hidden[i + 1]});
    if (!cfg_.color_hidden.empty())
        costs.color_layers.push_back({cfg_.color_hidden.back(), 3});
    costs.lookups_per_point = 36;
    return costs;
}

std::string
TensorfField::describe() const
{
    return "TensoRF(res=" + std::to_string(cfg_.resolution) +
           ",Rd=" + std::to_string(cfg_.density_components) +
           ",Ra=" + std::to_string(cfg_.appearance_components) + ")";
}

float
TensorfField::trainStep(const InstantNgpField::TrainSample &s)
{
    const int Cd = cfg_.density_components;
    const int Ca = cfg_.appearance_components;

    // ---- forward ----
    float dpv[3][16], dlv[3][16]; // density plane/line values
    float raw = 0.0f;
    for (int o = 0; o < 3; ++o) {
        float u, v, w;
        orientationCoords(o, s.pos, u, v, w);
        readPlane(den_planes_[o], Cd, u, v, dpv[o]);
        readLine(den_lines_[o], Cd, w, dlv[o]);
        for (int c = 0; c < Cd; ++c)
            raw += dpv[o][c] * dlv[o][c];
    }
    float sigma = softplus(raw - 1.0f);

    float apv[3][32], alv[3][32];
    float cin[kMaxGeoFeatures + kShCoeffs];
    for (int o = 0; o < 3; ++o) {
        float u, v, w;
        orientationCoords(o, s.pos, u, v, w);
        readPlane(app_planes_[o], Ca, u, v, apv[o]);
        readLine(app_lines_[o], Ca, w, alv[o]);
        for (int c = 0; c < Ca; ++c)
            cin[o * Ca + c] = apv[o][c] * alv[o][c];
    }
    shEncode(s.dir, cin + 3 * Ca);

    MlpWorkspace ws;
    float logits[3];
    color_mlp_.forward(cin, logits, ws);
    Vec3 c{sigmoid(logits[0]), sigmoid(logits[1]), sigmoid(logits[2])};

    // ---- loss (same shape as the NGP distillation loss) ----
    float dlog = std::log1p(sigma) - std::log1p(s.sigma_target);
    float occ = 1.0f - std::exp(-s.sigma_target * 0.05f);
    float cw = 0.02f + occ;
    Vec3 cdiff = c - s.color_target;
    float loss = dlog * dlog +
                 cw * (cdiff.x * cdiff.x + cdiff.y * cdiff.y +
                       cdiff.z * cdiff.z);

    // ---- backward ----
    float dlogits[3];
    dlogits[0] = cw * 2.0f * cdiff.x * c.x * (1.0f - c.x);
    dlogits[1] = cw * 2.0f * cdiff.y * c.y * (1.0f - c.y);
    dlogits[2] = cw * 2.0f * cdiff.z * c.z * (1.0f - c.z);

    float dcin[kMaxGeoFeatures + kShCoeffs];
    color_mlp_.backward(ws, dlogits, dcin);

    float dbuf[32];
    for (int o = 0; o < 3; ++o) {
        float u, v, w;
        orientationCoords(o, s.pos, u, v, w);
        // d(feat)/d(plane) = line value; d(feat)/d(line) = plane value.
        for (int c2 = 0; c2 < Ca; ++c2)
            dbuf[c2] = dcin[o * Ca + c2] * alv[o][c2];
        accumPlaneGrad(app_planes_[o], Ca, u, v, dbuf);
        for (int c2 = 0; c2 < Ca; ++c2)
            dbuf[c2] = dcin[o * Ca + c2] * apv[o][c2];
        accumLineGrad(app_lines_[o], Ca, w, dbuf);
    }

    float draw = 2.0f * dlog / (1.0f + sigma) * sigmoid(raw - 1.0f);
    for (int o = 0; o < 3; ++o) {
        float u, v, w;
        orientationCoords(o, s.pos, u, v, w);
        for (int c2 = 0; c2 < Cd; ++c2)
            dbuf[c2] = draw * dlv[o][c2];
        accumPlaneGrad(den_planes_[o], Cd, u, v, dbuf);
        for (int c2 = 0; c2 < Cd; ++c2)
            dbuf[c2] = draw * dpv[o][c2];
        accumLineGrad(den_lines_[o], Cd, w, dbuf);
    }
    return loss;
}

void
TensorfField::zeroGrads()
{
    for (int o = 0; o < 3; ++o) {
        den_planes_[o].zeroGrad();
        den_lines_[o].zeroGrad();
        app_planes_[o].zeroGrad();
        app_lines_[o].zeroGrad();
    }
    color_mlp_.zeroGrad();
}

void
TensorfField::applyAdam(float lr)
{
    ++adam_t_;
    for (int o = 0; o < 3; ++o) {
        den_planes_[o].adamStep(lr, adam_t_);
        den_lines_[o].adamStep(lr, adam_t_);
        app_planes_[o].adamStep(lr, adam_t_);
        app_lines_[o].adamStep(lr, adam_t_);
    }
    color_mlp_.adamStep(lr);
}

TensorfTrainReport
fitTensorf(TensorfField &field, const scene::AnalyticScene &scene,
           int steps, int batch, float lr, uint64_t seed)
{
    Rng rng(seed, 0x7F2);
    TensorfTrainReport report;
    for (int step = 0; step < steps; ++step) {
        field.zeroGrads();
        double batch_loss = 0.0;
        for (int b = 0; b < batch; ++b) {
            auto s = drawSample(scene, rng, 0.6f);
            batch_loss += field.trainStep(s);
        }
        batch_loss /= double(batch);
        float step_lr = lr;
        if (step > steps * 2 / 3)
            step_lr *= 1.0f / 9.0f;
        else if (step > steps / 3)
            step_lr *= 1.0f / 3.0f;
        field.applyAdam(step_lr);
        if (step == steps - 1)
            report.final_loss = batch_loss;
    }
    return report;
}

} // namespace asdr::nerf
