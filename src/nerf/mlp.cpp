#include "nerf/mlp.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"
#include "util/rng.hpp"

namespace asdr::nerf {

namespace {

/** Lane width of the register-blocked batch kernels. */
constexpr int kLaneBlock = 16;

/**
 * acc[p] = bias + wrow[0]*lanes0[p] + wrow[1]*lanes1[p] + ... -- THE
 * matvec micro-kernel shared by both forwardBatch variants. Lanes are
 * independent points, so within-point rounding matches the scalar
 * forward()'s accumulation order exactly; this one function is the
 * whole bit-identity contract. The pragma (a no-op without
 * -fopenmp-simd) keeps the lanes in vector registers; without it GCC
 * emits 16 scalar FMA chains.
 */
inline void
accumulateLanes(const float *__restrict wrow, float bias, int in,
                const float *__restrict lanes, float acc[kLaneBlock])
{
    for (int p = 0; p < kLaneBlock; ++p)
        acc[p] = bias;
    for (int i = 0; i < in; ++i) {
        const float wv = wrow[i];
        const float *__restrict lane = lanes + size_t(i) * kLaneBlock;
#pragma omp simd
        for (int p = 0; p < kLaneBlock; ++p)
            acc[p] += wv * lane[p];
    }
}

} // namespace

Mlp::Mlp(const MlpConfig &cfg, uint64_t seed) : cfg_(cfg)
{
    ASDR_ASSERT(cfg.input > 0 && cfg.output > 0, "bad MLP dimensions");
    std::vector<int> dims;
    dims.push_back(cfg.input);
    for (int h : cfg.hidden) {
        ASDR_ASSERT(h > 0, "bad hidden width");
        dims.push_back(h);
    }
    dims.push_back(cfg.output);

    Rng rng(seed, 0x31337);
    for (size_t i = 0; i + 1 < dims.size(); ++i) {
        Layer layer;
        layer.in = dims[i];
        layer.out = dims[i + 1];
        layer.w.resize(size_t(layer.in) * size_t(layer.out));
        layer.b.assign(size_t(layer.out), 0.0f);
        // He-normal init, scaled down on the output layer for stability.
        float std_dev = std::sqrt(2.0f / float(layer.in));
        if (i + 2 == dims.size())
            std_dev *= 0.5f;
        for (auto &w : layer.w)
            w = rng.nextGaussian() * std_dev;
        widest_ = std::max(widest_, size_t(layer.out));
        layers_.push_back(std::move(layer));
    }
}

void
Mlp::forward(const float *in, float *out) const
{
    // Two ping-pong buffers sized to the widest layer avoid allocation.
    thread_local std::vector<float> buf_a, buf_b;
    buf_a.resize(widest_);
    buf_b.resize(widest_);

    const float *src = in;
    float *dst = buf_a.data();
    for (size_t li = 0; li < layers_.size(); ++li) {
        const Layer &layer = layers_[li];
        bool last = li + 1 == layers_.size();
        float *target = last ? out : dst;
        for (int o = 0; o < layer.out; ++o) {
            const float *wrow = layer.w.data() + size_t(o) * layer.in;
            float acc = layer.b[size_t(o)];
            for (int i = 0; i < layer.in; ++i)
                acc += wrow[i] * src[i];
            target[o] = last ? acc : std::max(acc, 0.0f);
        }
        if (!last) {
            src = target;
            dst = (dst == buf_a.data()) ? buf_b.data() : buf_a.data();
        }
    }
}

void
Mlp::forwardBatch(const float *in, int count, int in_stride, float *out,
                  int out_stride) const
{
    ASDR_ASSERT(count >= 0 && in_stride >= cfg_.input &&
                    out_stride >= cfg_.output,
                "bad forwardBatch geometry");
    // Register-blocked micro-kernel: activations of a block of kBlock
    // points are held feature-major (lane p of feature i at
    // acts[i * kBlock + p]), so the inner loop runs *across points* --
    // independent accumulator lanes the compiler vectorizes -- while
    // each weight row streams exactly once per block (see
    // accumulateLanes; results are bit-identical to the scalar path).
    constexpr int kBlock = kLaneBlock;
    const size_t lane_w = std::max(size_t(cfg_.input), widest_);
    thread_local std::vector<float> acts_a, acts_b;
    acts_a.resize(lane_w * size_t(kBlock));
    acts_b.resize(lane_w * size_t(kBlock));

    for (int p0 = 0; p0 < count; p0 += kBlock) {
        const int bn = std::min(kBlock, count - p0);
        // Transpose the block's inputs into lanes; dead lanes are
        // zeroed so the arithmetic below stays finite.
        float *src_t = acts_a.data();
        float *dst_t = acts_b.data();
        for (int i = 0; i < cfg_.input; ++i) {
            float *lane = src_t + size_t(i) * kBlock;
            for (int p = 0; p < bn; ++p)
                lane[p] = in[size_t(p0 + p) * size_t(in_stride) + size_t(i)];
            for (int p = bn; p < kBlock; ++p)
                lane[p] = 0.0f;
        }

        for (size_t li = 0; li < layers_.size(); ++li) {
            const Layer &layer = layers_[li];
            const bool last = li + 1 == layers_.size();
            for (int o = 0; o < layer.out; ++o) {
                float acc[kBlock];
                accumulateLanes(layer.w.data() + size_t(o) * layer.in,
                                layer.b[size_t(o)], layer.in, src_t, acc);
                if (last) {
                    for (int p = 0; p < bn; ++p)
                        out[size_t(p0 + p) * size_t(out_stride) +
                            size_t(o)] = acc[p];
                } else {
                    float *lane = dst_t + size_t(o) * kBlock;
                    for (int p = 0; p < kBlock; ++p)
                        lane[p] = std::max(acc[p], 0.0f);
                }
            }
            std::swap(src_t, dst_t);
        }
    }
}

void
Mlp::forward(const float *in, float *out, MlpWorkspace &ws) const
{
    ws.acts.resize(layers_.size() + 1);
    ws.acts[0].assign(in, in + cfg_.input);
    for (size_t li = 0; li < layers_.size(); ++li) {
        const Layer &layer = layers_[li];
        bool last = li + 1 == layers_.size();
        ws.acts[li + 1].resize(size_t(layer.out));
        const float *src = ws.acts[li].data();
        float *dst = ws.acts[li + 1].data();
        for (int o = 0; o < layer.out; ++o) {
            const float *wrow = layer.w.data() + size_t(o) * layer.in;
            float acc = layer.b[size_t(o)];
            for (int i = 0; i < layer.in; ++i)
                acc += wrow[i] * src[i];
            dst[o] = last ? acc : std::max(acc, 0.0f);
        }
    }
    std::copy(ws.acts.back().begin(), ws.acts.back().end(), out);
}

void
Mlp::forwardBatch(const float *in, int count, int in_stride, float *out,
                  int out_stride, MlpBatchWorkspace &ws) const
{
    ASDR_ASSERT(count >= 0 && in_stride >= cfg_.input &&
                    out_stride >= cfg_.output,
                "bad forwardBatch geometry");
    // Same accumulateLanes kernel as the inference forwardBatch above
    // -- identical accumulation order, so outputs are bit-identical to
    // per-sample forward() -- except every layer's activations are
    // written out row-major so backward(ws, p, ...) can replay any
    // sample.
    constexpr int kBlock = kLaneBlock;
    ws.count = count;
    ws.acts.resize(layers_.size() + 1);
    ws.acts[0].resize(size_t(count) * size_t(cfg_.input));
    for (int p = 0; p < count; ++p)
        std::copy(in + size_t(p) * size_t(in_stride),
                  in + size_t(p) * size_t(in_stride) + size_t(cfg_.input),
                  ws.acts[0].data() + size_t(p) * size_t(cfg_.input));

    thread_local std::vector<float> lanes;
    for (size_t li = 0; li < layers_.size(); ++li) {
        const Layer &layer = layers_[li];
        const bool last = li + 1 == layers_.size();
        ws.acts[li + 1].resize(size_t(count) * size_t(layer.out));
        const float *src = ws.acts[li].data();
        float *dst = ws.acts[li + 1].data();
        lanes.resize(size_t(layer.in) * size_t(kBlock));

        for (int p0 = 0; p0 < count; p0 += kBlock) {
            const int bn = std::min(kBlock, count - p0);
            // Transpose the block's rows into feature-major lanes; dead
            // lanes are zeroed so the arithmetic stays finite.
            for (int i = 0; i < layer.in; ++i) {
                float *lane = lanes.data() + size_t(i) * kBlock;
                for (int p = 0; p < bn; ++p)
                    lane[p] =
                        src[size_t(p0 + p) * size_t(layer.in) + size_t(i)];
                for (int p = bn; p < kBlock; ++p)
                    lane[p] = 0.0f;
            }
            for (int o = 0; o < layer.out; ++o) {
                float acc[kBlock];
                accumulateLanes(layer.w.data() + size_t(o) * layer.in,
                                layer.b[size_t(o)], layer.in,
                                lanes.data(), acc);
                for (int p = 0; p < bn; ++p)
                    dst[size_t(p0 + p) * size_t(layer.out) + size_t(o)] =
                        last ? acc[p] : std::max(acc[p], 0.0f);
            }
        }
    }

    const std::vector<float> &last_acts = ws.acts.back();
    for (int p = 0; p < count; ++p)
        std::copy(last_acts.data() + size_t(p) * size_t(cfg_.output),
                  last_acts.data() + size_t(p + 1) * size_t(cfg_.output),
                  out + size_t(p) * size_t(out_stride));
}

void
Mlp::backwardImpl(const float *const *acts, const float *dout, float *din)
{
    for (auto &layer : layers_) {
        if (layer.gw.empty()) {
            layer.gw.assign(layer.w.size(), 0.0f);
            layer.gb.assign(layer.b.size(), 0.0f);
        }
    }

    // Ping-pong delta buffers, reused across calls: backward runs once
    // per sample inside the training loop, so per-call heap traffic
    // would dominate the small per-layer matvecs.
    const size_t buf_w = std::max(size_t(cfg_.input), widest_);
    thread_local std::vector<float> delta_buf, prev_buf;
    delta_buf.resize(buf_w);
    prev_buf.resize(buf_w);
    float *delta = delta_buf.data();
    float *prev = prev_buf.data();
    std::copy(dout, dout + layers_.back().out, delta);

    for (size_t li = layers_.size(); li-- > 0;) {
        Layer &layer = layers_[li];
        const float *input = acts[li];
        const float *output = acts[li + 1];
        bool last = li + 1 == layers_.size();

        // ReLU gate on hidden layers (output layer is linear).
        if (!last) {
            for (int o = 0; o < layer.out; ++o)
                if (output[size_t(o)] <= 0.0f)
                    delta[size_t(o)] = 0.0f;
        }

        for (int o = 0; o < layer.out; ++o) {
            float d = delta[size_t(o)];
            if (d == 0.0f)
                continue;
            float *grow = layer.gw.data() + size_t(o) * layer.in;
            for (int i = 0; i < layer.in; ++i)
                grow[i] += d * input[size_t(i)];
            layer.gb[size_t(o)] += d;
        }

        if (li > 0 || din) {
            std::fill(prev, prev + layer.in, 0.0f);
            for (int o = 0; o < layer.out; ++o) {
                float d = delta[size_t(o)];
                if (d == 0.0f)
                    continue;
                const float *wrow = layer.w.data() + size_t(o) * layer.in;
                for (int i = 0; i < layer.in; ++i)
                    prev[size_t(i)] += d * wrow[i];
            }
            if (li == 0) {
                std::copy(prev, prev + layer.in, din);
                break;
            }
            std::swap(delta, prev);
        }
    }
}

namespace {
/** Activation-pointer scratch bound (layers + 1; deepest net is 5). */
constexpr size_t kMaxBackwardDepth = 16;
} // namespace

void
Mlp::backward(const MlpWorkspace &ws, const float *dout, float *din)
{
    ASDR_ASSERT(ws.acts.size() == layers_.size() + 1,
                "workspace does not match a forward pass");
    ASDR_ASSERT(ws.acts.size() <= kMaxBackwardDepth, "MLP too deep");
    const float *acts[kMaxBackwardDepth];
    for (size_t li = 0; li < ws.acts.size(); ++li)
        acts[li] = ws.acts[li].data();
    backwardImpl(acts, dout, din);
}

void
Mlp::backward(const MlpBatchWorkspace &ws, int p, const float *dout,
              float *din)
{
    ASDR_ASSERT(ws.acts.size() == layers_.size() + 1 && p >= 0 &&
                    p < ws.count,
                "workspace does not match a batched forward pass");
    ASDR_ASSERT(ws.acts.size() <= kMaxBackwardDepth, "MLP too deep");
    const float *acts[kMaxBackwardDepth];
    acts[0] = ws.acts[0].data() + size_t(p) * size_t(cfg_.input);
    for (size_t li = 0; li < layers_.size(); ++li)
        acts[li + 1] = ws.acts[li + 1].data() +
                       size_t(p) * size_t(layers_[li].out);
    backwardImpl(acts, dout, din);
}

void
Mlp::zeroGrad()
{
    for (auto &layer : layers_) {
        std::fill(layer.gw.begin(), layer.gw.end(), 0.0f);
        std::fill(layer.gb.begin(), layer.gb.end(), 0.0f);
    }
}

void
Mlp::adamStep(float lr, float beta1, float beta2, float eps)
{
    ++adam_t_;
    float bc1 = 1.0f - std::pow(beta1, float(adam_t_));
    float bc2 = 1.0f - std::pow(beta2, float(adam_t_));
    for (auto &layer : layers_) {
        if (layer.gw.empty())
            continue;
        if (layer.mw.empty()) {
            layer.mw.assign(layer.w.size(), 0.0f);
            layer.vw.assign(layer.w.size(), 0.0f);
            layer.mb.assign(layer.b.size(), 0.0f);
            layer.vb.assign(layer.b.size(), 0.0f);
        }
        auto update = [&](std::vector<float> &p, std::vector<float> &g,
                          std::vector<float> &m, std::vector<float> &v) {
            for (size_t i = 0; i < p.size(); ++i) {
                m[i] = beta1 * m[i] + (1.0f - beta1) * g[i];
                v[i] = beta2 * v[i] + (1.0f - beta2) * g[i] * g[i];
                float mhat = m[i] / bc1;
                float vhat = v[i] / bc2;
                p[i] -= lr * mhat / (std::sqrt(vhat) + eps);
            }
        };
        update(layer.w, layer.gw, layer.mw, layer.vw);
        update(layer.b, layer.gb, layer.mb, layer.vb);
    }
}

size_t
Mlp::paramCount() const
{
    size_t n = 0;
    for (const auto &layer : layers_)
        n += layer.w.size() + layer.b.size();
    return n;
}

double
Mlp::forwardMacs() const
{
    double macs = 0.0;
    for (const auto &layer : layers_)
        macs += double(layer.in) * double(layer.out);
    return macs;
}

std::vector<float>
Mlp::serializeParams() const
{
    std::vector<float> flat;
    flat.reserve(paramCount());
    for (const auto &layer : layers_) {
        flat.insert(flat.end(), layer.w.begin(), layer.w.end());
        flat.insert(flat.end(), layer.b.begin(), layer.b.end());
    }
    return flat;
}

void
Mlp::deserializeParams(const std::vector<float> &flat)
{
    ASDR_ASSERT(flat.size() == paramCount(), "parameter blob size mismatch");
    size_t pos = 0;
    for (auto &layer : layers_) {
        std::copy(flat.begin() + pos, flat.begin() + pos + layer.w.size(),
                  layer.w.begin());
        pos += layer.w.size();
        std::copy(flat.begin() + pos, flat.begin() + pos + layer.b.size(),
                  layer.b.begin());
        pos += layer.b.size();
    }
}

} // namespace asdr::nerf
