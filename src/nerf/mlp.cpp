#include "nerf/mlp.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"
#include "util/rng.hpp"

namespace asdr::nerf {

Mlp::Mlp(const MlpConfig &cfg, uint64_t seed) : cfg_(cfg)
{
    ASDR_ASSERT(cfg.input > 0 && cfg.output > 0, "bad MLP dimensions");
    std::vector<int> dims;
    dims.push_back(cfg.input);
    for (int h : cfg.hidden) {
        ASDR_ASSERT(h > 0, "bad hidden width");
        dims.push_back(h);
    }
    dims.push_back(cfg.output);

    Rng rng(seed, 0x31337);
    for (size_t i = 0; i + 1 < dims.size(); ++i) {
        Layer layer;
        layer.in = dims[i];
        layer.out = dims[i + 1];
        layer.w.resize(size_t(layer.in) * size_t(layer.out));
        layer.b.assign(size_t(layer.out), 0.0f);
        // He-normal init, scaled down on the output layer for stability.
        float std_dev = std::sqrt(2.0f / float(layer.in));
        if (i + 2 == dims.size())
            std_dev *= 0.5f;
        for (auto &w : layer.w)
            w = rng.nextGaussian() * std_dev;
        widest_ = std::max(widest_, size_t(layer.out));
        layers_.push_back(std::move(layer));
    }
}

void
Mlp::forward(const float *in, float *out) const
{
    // Two ping-pong buffers sized to the widest layer avoid allocation.
    thread_local std::vector<float> buf_a, buf_b;
    buf_a.resize(widest_);
    buf_b.resize(widest_);

    const float *src = in;
    float *dst = buf_a.data();
    for (size_t li = 0; li < layers_.size(); ++li) {
        const Layer &layer = layers_[li];
        bool last = li + 1 == layers_.size();
        float *target = last ? out : dst;
        for (int o = 0; o < layer.out; ++o) {
            const float *wrow = layer.w.data() + size_t(o) * layer.in;
            float acc = layer.b[size_t(o)];
            for (int i = 0; i < layer.in; ++i)
                acc += wrow[i] * src[i];
            target[o] = last ? acc : std::max(acc, 0.0f);
        }
        if (!last) {
            src = target;
            dst = (dst == buf_a.data()) ? buf_b.data() : buf_a.data();
        }
    }
}

void
Mlp::forwardBatch(const float *in, int count, int in_stride, float *out,
                  int out_stride) const
{
    ASDR_ASSERT(count >= 0 && in_stride >= cfg_.input &&
                    out_stride >= cfg_.output,
                "bad forwardBatch geometry");
    // Register-blocked micro-kernel: activations of a block of kBlock
    // points are held feature-major (lane p of feature i at
    // acts[i * kBlock + p]), so the inner loop runs *across points* --
    // independent accumulator lanes the compiler vectorizes -- while
    // each weight row streams exactly once per block. Every point still
    // accumulates bias + w[0]*x0 + w[1]*x1 + ... in forward()'s order,
    // so results are bit-identical to the scalar path.
    constexpr int kBlock = 16;
    const size_t lane_w = std::max(size_t(cfg_.input), widest_);
    thread_local std::vector<float> acts_a, acts_b;
    acts_a.resize(lane_w * size_t(kBlock));
    acts_b.resize(lane_w * size_t(kBlock));

    for (int p0 = 0; p0 < count; p0 += kBlock) {
        const int bn = std::min(kBlock, count - p0);
        // Transpose the block's inputs into lanes; dead lanes are
        // zeroed so the arithmetic below stays finite.
        float *src_t = acts_a.data();
        float *dst_t = acts_b.data();
        for (int i = 0; i < cfg_.input; ++i) {
            float *lane = src_t + size_t(i) * kBlock;
            for (int p = 0; p < bn; ++p)
                lane[p] = in[size_t(p0 + p) * size_t(in_stride) + size_t(i)];
            for (int p = bn; p < kBlock; ++p)
                lane[p] = 0.0f;
        }

        for (size_t li = 0; li < layers_.size(); ++li) {
            const Layer &layer = layers_[li];
            const bool last = li + 1 == layers_.size();
            for (int o = 0; o < layer.out; ++o) {
                const float *__restrict wrow =
                    layer.w.data() + size_t(o) * layer.in;
                float acc[kBlock];
                const float bias = layer.b[size_t(o)];
                for (int p = 0; p < kBlock; ++p)
                    acc[p] = bias;
                for (int i = 0; i < layer.in; ++i) {
                    const float wv = wrow[i];
                    const float *__restrict lane =
                        src_t + size_t(i) * kBlock;
                    // The pragma (a no-op without -fopenmp-simd) keeps
                    // the lanes in vector registers; without it GCC
                    // emits 16 scalar FMA chains. Lanes are independent
                    // points, so within-point rounding is untouched.
#pragma omp simd
                    for (int p = 0; p < kBlock; ++p)
                        acc[p] += wv * lane[p];
                }
                if (last) {
                    for (int p = 0; p < bn; ++p)
                        out[size_t(p0 + p) * size_t(out_stride) +
                            size_t(o)] = acc[p];
                } else {
                    float *lane = dst_t + size_t(o) * kBlock;
                    for (int p = 0; p < kBlock; ++p)
                        lane[p] = std::max(acc[p], 0.0f);
                }
            }
            std::swap(src_t, dst_t);
        }
    }
}

void
Mlp::forward(const float *in, float *out, MlpWorkspace &ws) const
{
    ws.acts.resize(layers_.size() + 1);
    ws.acts[0].assign(in, in + cfg_.input);
    for (size_t li = 0; li < layers_.size(); ++li) {
        const Layer &layer = layers_[li];
        bool last = li + 1 == layers_.size();
        ws.acts[li + 1].resize(size_t(layer.out));
        const float *src = ws.acts[li].data();
        float *dst = ws.acts[li + 1].data();
        for (int o = 0; o < layer.out; ++o) {
            const float *wrow = layer.w.data() + size_t(o) * layer.in;
            float acc = layer.b[size_t(o)];
            for (int i = 0; i < layer.in; ++i)
                acc += wrow[i] * src[i];
            dst[o] = last ? acc : std::max(acc, 0.0f);
        }
    }
    std::copy(ws.acts.back().begin(), ws.acts.back().end(), out);
}

void
Mlp::backward(const MlpWorkspace &ws, const float *dout, float *din)
{
    ASDR_ASSERT(ws.acts.size() == layers_.size() + 1,
                "workspace does not match a forward pass");
    for (auto &layer : layers_) {
        if (layer.gw.empty()) {
            layer.gw.assign(layer.w.size(), 0.0f);
            layer.gb.assign(layer.b.size(), 0.0f);
        }
    }

    std::vector<float> delta(ws.acts.back().size());
    std::copy(dout, dout + delta.size(), delta.begin());

    for (size_t li = layers_.size(); li-- > 0;) {
        Layer &layer = layers_[li];
        const std::vector<float> &input = ws.acts[li];
        const std::vector<float> &output = ws.acts[li + 1];
        bool last = li + 1 == layers_.size();

        // ReLU gate on hidden layers (output layer is linear).
        if (!last) {
            for (int o = 0; o < layer.out; ++o)
                if (output[size_t(o)] <= 0.0f)
                    delta[size_t(o)] = 0.0f;
        }

        for (int o = 0; o < layer.out; ++o) {
            float d = delta[size_t(o)];
            if (d == 0.0f)
                continue;
            float *grow = layer.gw.data() + size_t(o) * layer.in;
            for (int i = 0; i < layer.in; ++i)
                grow[i] += d * input[size_t(i)];
            layer.gb[size_t(o)] += d;
        }

        if (li > 0 || din) {
            std::vector<float> prev(size_t(layer.in), 0.0f);
            for (int o = 0; o < layer.out; ++o) {
                float d = delta[size_t(o)];
                if (d == 0.0f)
                    continue;
                const float *wrow = layer.w.data() + size_t(o) * layer.in;
                for (int i = 0; i < layer.in; ++i)
                    prev[size_t(i)] += d * wrow[i];
            }
            if (li == 0) {
                std::copy(prev.begin(), prev.end(), din);
                break;
            }
            delta = std::move(prev);
        }
    }
}

void
Mlp::zeroGrad()
{
    for (auto &layer : layers_) {
        std::fill(layer.gw.begin(), layer.gw.end(), 0.0f);
        std::fill(layer.gb.begin(), layer.gb.end(), 0.0f);
    }
}

void
Mlp::adamStep(float lr, float beta1, float beta2, float eps)
{
    ++adam_t_;
    float bc1 = 1.0f - std::pow(beta1, float(adam_t_));
    float bc2 = 1.0f - std::pow(beta2, float(adam_t_));
    for (auto &layer : layers_) {
        if (layer.gw.empty())
            continue;
        if (layer.mw.empty()) {
            layer.mw.assign(layer.w.size(), 0.0f);
            layer.vw.assign(layer.w.size(), 0.0f);
            layer.mb.assign(layer.b.size(), 0.0f);
            layer.vb.assign(layer.b.size(), 0.0f);
        }
        auto update = [&](std::vector<float> &p, std::vector<float> &g,
                          std::vector<float> &m, std::vector<float> &v) {
            for (size_t i = 0; i < p.size(); ++i) {
                m[i] = beta1 * m[i] + (1.0f - beta1) * g[i];
                v[i] = beta2 * v[i] + (1.0f - beta2) * g[i] * g[i];
                float mhat = m[i] / bc1;
                float vhat = v[i] / bc2;
                p[i] -= lr * mhat / (std::sqrt(vhat) + eps);
            }
        };
        update(layer.w, layer.gw, layer.mw, layer.vw);
        update(layer.b, layer.gb, layer.mb, layer.vb);
    }
}

size_t
Mlp::paramCount() const
{
    size_t n = 0;
    for (const auto &layer : layers_)
        n += layer.w.size() + layer.b.size();
    return n;
}

double
Mlp::forwardMacs() const
{
    double macs = 0.0;
    for (const auto &layer : layers_)
        macs += double(layer.in) * double(layer.out);
    return macs;
}

std::vector<float>
Mlp::serializeParams() const
{
    std::vector<float> flat;
    flat.reserve(paramCount());
    for (const auto &layer : layers_) {
        flat.insert(flat.end(), layer.w.begin(), layer.w.end());
        flat.insert(flat.end(), layer.b.begin(), layer.b.end());
    }
    return flat;
}

void
Mlp::deserializeParams(const std::vector<float> &flat)
{
    ASDR_ASSERT(flat.size() == paramCount(), "parameter blob size mismatch");
    size_t pos = 0;
    for (auto &layer : layers_) {
        std::copy(flat.begin() + pos, flat.begin() + pos + layer.w.size(),
                  layer.w.begin());
        pos += layer.w.size();
        std::copy(flat.begin() + pos, flat.begin() + pos + layer.b.size(),
                  layer.b.begin());
        pos += layer.b.size();
    }
}

} // namespace asdr::nerf
