#include "nerf/dvgo.hpp"

#include <algorithm>
#include <cmath>

#include "nerf/sh_encoding.hpp"
#include "nerf/trainer.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace asdr::nerf {

namespace {

float
softplus(float x)
{
    if (x > 20.0f)
        return x;
    return std::log1p(std::exp(x));
}

float
sigmoid(float x)
{
    return 1.0f / (1.0f + std::exp(-x));
}

} // namespace

void
DvgoField::DenseGrid::init(int res, int feats, float scale,
                           uint64_t &seed)
{
    resolution = res;
    features = feats;
    size_t verts = size_t(res + 1) * size_t(res + 1) * size_t(res + 1);
    value.resize(verts * size_t(feats));
    for (auto &p : value) {
        uint64_t r = splitmix64(seed);
        p = (float(r >> 40) / float(1 << 24) - 0.5f) * 2.0f * scale;
    }
}

void
DvgoField::DenseGrid::locate(const Vec3 &pos, Vec3i &voxel,
                             Vec3 &frac) const
{
    float res = float(resolution);
    float sx = std::clamp(pos.x, 0.0f, 1.0f) * res;
    float sy = std::clamp(pos.y, 0.0f, 1.0f) * res;
    float sz = std::clamp(pos.z, 0.0f, 1.0f) * res;
    int vx = std::min(int(sx), resolution - 1);
    int vy = std::min(int(sy), resolution - 1);
    int vz = std::min(int(sz), resolution - 1);
    voxel = {vx, vy, vz};
    frac = {sx - float(vx), sy - float(vy), sz - float(vz)};
}

void
DvgoField::DenseGrid::read(const Vec3 &pos, float *out) const
{
    Vec3i voxel;
    Vec3 frac;
    locate(pos, voxel, frac);
    float w[8];
    const uint32_t vpa = uint32_t(resolution + 1);
    float wx[2] = {1.0f - frac.x, frac.x};
    float wy[2] = {1.0f - frac.y, frac.y};
    float wz[2] = {1.0f - frac.z, frac.z};
    for (int f = 0; f < features; ++f)
        out[f] = 0.0f;
    for (int i = 0; i < 8; ++i) {
        w[i] = wx[i & 1] * wy[(i >> 1) & 1] * wz[(i >> 2) & 1];
        uint32_t idx =
            ((uint32_t(voxel.z + ((i >> 2) & 1)) * vpa +
              uint32_t(voxel.y + ((i >> 1) & 1))) *
             vpa) +
            uint32_t(voxel.x + (i & 1));
        const float *entry = value.data() + size_t(idx) * size_t(features);
        for (int f = 0; f < features; ++f)
            out[f] += w[i] * entry[f];
    }
}

void
DvgoField::DenseGrid::accumGrad(const Vec3 &pos, const float *dout)
{
    if (grad.empty())
        grad.assign(value.size(), 0.0f);
    Vec3i voxel;
    Vec3 frac;
    locate(pos, voxel, frac);
    const uint32_t vpa = uint32_t(resolution + 1);
    float wx[2] = {1.0f - frac.x, frac.x};
    float wy[2] = {1.0f - frac.y, frac.y};
    float wz[2] = {1.0f - frac.z, frac.z};
    for (int i = 0; i < 8; ++i) {
        float w = wx[i & 1] * wy[(i >> 1) & 1] * wz[(i >> 2) & 1];
        uint32_t idx =
            ((uint32_t(voxel.z + ((i >> 2) & 1)) * vpa +
              uint32_t(voxel.y + ((i >> 1) & 1))) *
             vpa) +
            uint32_t(voxel.x + (i & 1));
        float *entry = grad.data() + size_t(idx) * size_t(features);
        for (int f = 0; f < features; ++f)
            entry[f] += w * dout[f];
    }
}

void
DvgoField::DenseGrid::adamStep(float lr, int t)
{
    if (grad.empty())
        return;
    if (m.empty()) {
        m.assign(value.size(), 0.0f);
        v.assign(value.size(), 0.0f);
    }
    const float beta1 = 0.9f, beta2 = 0.999f, eps = 1e-8f;
    float bc1 = 1.0f - std::pow(beta1, float(t));
    float bc2 = 1.0f - std::pow(beta2, float(t));
    for (size_t i = 0; i < value.size(); ++i) {
        float g = grad[i];
        if (g == 0.0f)
            continue;
        m[i] = beta1 * m[i] + (1.0f - beta1) * g;
        v[i] = beta2 * v[i] + (1.0f - beta2) * g * g;
        value[i] -= lr * (m[i] / bc1) / (std::sqrt(v[i] / bc2) + eps);
    }
}

void
DvgoField::DenseGrid::zeroGrad()
{
    std::fill(grad.begin(), grad.end(), 0.0f);
}

DvgoField::DvgoField(const DvgoConfig &cfg, uint64_t seed)
    : cfg_(cfg),
      color_mlp_({int(cfg.resolutions.size()) * cfg.features_per_level +
                      kShCoeffs,
                  cfg.color_hidden, 3},
                 seed ^ 0xD60ull)
{
    ASDR_ASSERT(!cfg.resolutions.empty(), "DVGO needs feature grids");
    uint64_t s = seed;
    feature_grids_.resize(cfg.resolutions.size());
    for (size_t l = 0; l < cfg.resolutions.size(); ++l)
        feature_grids_[l].init(cfg.resolutions[l], cfg.features_per_level,
                               0.1f, s);
    density_grid_.init(cfg.density_resolution, 1, 0.01f, s);
}

DensityOutput
DvgoField::density(const Vec3 &pos) const
{
    float raw = 0.0f;
    density_grid_.read(pos, &raw);
    DensityOutput out;
    out.sigma = softplus(raw - 1.0f);
    out.geo[0] = raw;
    return out;
}

Vec3
DvgoField::color(const Vec3 &pos, const Vec3 &dir,
                 const DensityOutput &den) const
{
    (void)den;
    float cin[kMaxGeoFeatures + kShCoeffs];
    int offset = 0;
    for (const auto &grid : feature_grids_) {
        grid.read(pos, cin + offset);
        offset += grid.features;
    }
    shEncode(dir, cin + offset);
    float logits[3];
    color_mlp_.forward(cin, logits);
    return {sigmoid(logits[0]), sigmoid(logits[1]), sigmoid(logits[2])};
}

void
DvgoField::colorBatch(const Vec3 *pos, const Vec3 &dir,
                      const DensityOutput *den, int count, Vec3 *out) const
{
    (void)den;
    const int ci = featureDim() + kShCoeffs;
    thread_local std::vector<float> cin, logits;
    cin.resize(size_t(ci) * size_t(count));
    logits.resize(3 * size_t(count));

    float sh[kShCoeffs];
    shEncode(dir, sh);
    for (int p = 0; p < count; ++p) {
        float *row = cin.data() + size_t(p) * size_t(ci);
        int offset = 0;
        for (const auto &grid : feature_grids_) {
            grid.read(pos[p], row + offset);
            offset += grid.features;
        }
        std::copy(sh, sh + kShCoeffs, row + offset);
    }

    color_mlp_.forwardBatch(cin.data(), count, ci, logits.data(), 3);
    for (int p = 0; p < count; ++p) {
        const float *l = logits.data() + size_t(p) * 3;
        out[p] = {sigmoid(l[0]), sigmoid(l[1]), sigmoid(l[2])};
    }
}

void
DvgoField::traceLookups(const Vec3 &pos, LookupSink &sink) const
{
    // Tables: 0..L-1 feature grids, L = density grid; 8 vertex reads
    // each, exactly like a hash-grid level but with injective indexing.
    VertexLookup lookups[(8 + 1) * 8 * 4];
    size_t n = 0;
    auto emit = [&](const DenseGrid &grid, uint16_t table) {
        Vec3i voxel;
        Vec3 frac;
        grid.locate(pos, voxel, frac);
        const uint32_t vpa = uint32_t(grid.resolution + 1);
        for (int i = 0; i < 8; ++i) {
            Vec3i v{voxel.x + (i & 1), voxel.y + ((i >> 1) & 1),
                    voxel.z + ((i >> 2) & 1)};
            lookups[n].level = table;
            lookups[n].vertex = v;
            lookups[n].index =
                (uint32_t(v.z) * vpa + uint32_t(v.y)) * vpa +
                uint32_t(v.x);
            ++n;
        }
    };
    for (size_t l = 0; l < feature_grids_.size(); ++l)
        emit(feature_grids_[l], uint16_t(l));
    emit(density_grid_, uint16_t(feature_grids_.size()));
    sink.onPointLookups(lookups, n);
}

TableSchema
DvgoField::tableSchema() const
{
    TableSchema schema;
    schema.hash_table_entries = 0; // every table is dense
    schema.features = cfg_.features_per_level;
    auto add = [&](const DenseGrid &grid) {
        TableInfo info;
        info.dense = true;
        info.verts_per_axis = grid.resolution + 1;
        uint64_t verts = uint64_t(grid.resolution + 1);
        info.entries = uint32_t(verts * verts * verts);
        info.dims = 3;
        schema.tables.push_back(info);
    };
    for (const auto &grid : feature_grids_)
        add(grid);
    add(density_grid_);
    return schema;
}

FieldCosts
DvgoField::costs() const
{
    FieldCosts costs;
    const int F = cfg_.features_per_level;
    costs.encode_flops =
        double(feature_grids_.size()) * (12.0 + 8.0 * F * 2.0) +
        (12.0 + 8.0 * 2.0);
    costs.density_flops = 10.0; // direct grid read + activation
    costs.color_flops = 2.0 * color_mlp_.forwardMacs() + shEncodeFlops();
    costs.color_layers.push_back(
        {color_mlp_.inputDim(),
         cfg_.color_hidden.empty() ? 3 : cfg_.color_hidden.front()});
    for (size_t i = 0; i + 1 < cfg_.color_hidden.size(); ++i)
        costs.color_layers.push_back(
            {cfg_.color_hidden[i], cfg_.color_hidden[i + 1]});
    if (!cfg_.color_hidden.empty())
        costs.color_layers.push_back({cfg_.color_hidden.back(), 3});
    costs.lookups_per_point = int(feature_grids_.size() + 1) * 8;
    return costs;
}

std::string
DvgoField::describe() const
{
    return "DirectVoxGO(L=" + std::to_string(cfg_.resolutions.size()) +
           ",dens=" + std::to_string(cfg_.density_resolution) + "^3)";
}

float
DvgoField::trainStep(const InstantNgpField::TrainSample &s)
{
    // ---- forward ----
    float raw = 0.0f;
    density_grid_.read(s.pos, &raw);
    float sigma = softplus(raw - 1.0f);

    float cin[kMaxGeoFeatures + kShCoeffs];
    int offset = 0;
    for (const auto &grid : feature_grids_) {
        grid.read(s.pos, cin + offset);
        offset += grid.features;
    }
    shEncode(s.dir, cin + offset);

    MlpWorkspace ws;
    float logits[3];
    color_mlp_.forward(cin, logits, ws);
    Vec3 c{sigmoid(logits[0]), sigmoid(logits[1]), sigmoid(logits[2])};

    // ---- loss (shared distillation shape) ----
    float dlog = std::log1p(sigma) - std::log1p(s.sigma_target);
    float occ = 1.0f - std::exp(-s.sigma_target * 0.05f);
    float cw = 0.02f + occ;
    Vec3 cdiff = c - s.color_target;
    float loss = dlog * dlog +
                 cw * (cdiff.x * cdiff.x + cdiff.y * cdiff.y +
                       cdiff.z * cdiff.z);

    // ---- backward ----
    float dlogits[3];
    dlogits[0] = cw * 2.0f * cdiff.x * c.x * (1.0f - c.x);
    dlogits[1] = cw * 2.0f * cdiff.y * c.y * (1.0f - c.y);
    dlogits[2] = cw * 2.0f * cdiff.z * c.z * (1.0f - c.z);

    float dcin[kMaxGeoFeatures + kShCoeffs];
    color_mlp_.backward(ws, dlogits, dcin);
    offset = 0;
    for (auto &grid : feature_grids_) {
        grid.accumGrad(s.pos, dcin + offset);
        offset += grid.features;
    }

    float draw = 2.0f * dlog / (1.0f + sigma) * sigmoid(raw - 1.0f);
    density_grid_.accumGrad(s.pos, &draw);
    return loss;
}

void
DvgoField::zeroGrads()
{
    for (auto &grid : feature_grids_)
        grid.zeroGrad();
    density_grid_.zeroGrad();
    color_mlp_.zeroGrad();
}

void
DvgoField::applyAdam(float lr)
{
    ++adam_t_;
    // Direct voxel grids take much larger steps than network weights
    // (their values are additive, not multiplicative) -- the same
    // split-learning-rate recipe DirectVoxGO itself uses.
    for (auto &grid : feature_grids_)
        grid.adamStep(lr * 2.0f, adam_t_);
    density_grid_.adamStep(lr * 10.0f, adam_t_);
    color_mlp_.adamStep(lr);
}

DvgoTrainReport
fitDvgo(DvgoField &field, const scene::AnalyticScene &scene, int steps,
        int batch, float lr, uint64_t seed)
{
    Rng rng(seed, 0xD1F);
    DvgoTrainReport report;
    for (int step = 0; step < steps; ++step) {
        field.zeroGrads();
        double batch_loss = 0.0;
        for (int b = 0; b < batch; ++b) {
            auto s = drawSample(scene, rng, 0.6f);
            batch_loss += field.trainStep(s);
        }
        batch_loss /= double(batch);
        float step_lr = lr;
        if (step > steps * 2 / 3)
            step_lr *= 1.0f / 9.0f;
        else if (step > steps / 3)
            step_lr *= 1.0f / 3.0f;
        field.applyAdam(step_lr);
        if (step == steps - 1)
            report.final_loss = batch_loss;
    }
    return report;
}

} // namespace asdr::nerf
