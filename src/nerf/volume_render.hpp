/**
 * @file
 * Volume rendering along a ray (paper Eq. 1):
 *   C = sum_i T_i * alpha_i * c_i,  T_i = prod_{j<i} (1 - alpha_j),
 *   alpha_i = 1 - exp(-sigma_i * delta_i).
 *
 * Also provides the *strided subset* compositing the adaptive sampler
 * uses to evaluate rendering difficulty (Eq. 3) on already-predicted
 * points, and the early-termination scan of §6.6.
 */

#ifndef ASDR_NERF_VOLUME_RENDER_HPP
#define ASDR_NERF_VOLUME_RENDER_HPP

#include <vector>

#include "util/vec.hpp"

namespace asdr::nerf {

/** Result of compositing one ray. */
struct CompositeResult
{
    Vec3 color;          ///< accumulated radiance (black background)
    float opacity = 0.0f; ///< 1 - final transmittance
};

/**
 * Composite `n` points with uniform spacing `dt`, using every
 * `stride`-th point starting at index 0 (the stride scales the
 * effective spacing so total optical depth is preserved).
 */
CompositeResult composite(const float *sigma, const Vec3 *color, int n,
                          float dt, int stride = 1);

/**
 * Composite the same point buffers at `count` strides in a single pass
 * over sigma/color (one memory walk instead of one per candidate --
 * Phase I evaluates all its candidate subsets this way). out[k] is
 * bit-identical to composite(sigma, color, n, dt, strides[k]).
 */
void compositeMulti(const float *sigma, const Vec3 *color, int n, float dt,
                    const int *strides, int count, CompositeResult *out);

/**
 * First index at which transmittance drops below `eps` (the paper's
 * early termination: stop once accumulated opacity saturates). Returns
 * `n` when the ray never saturates.
 */
int earlyTerminationIndex(const float *sigma, int n, float dt, float eps);

/** alpha_i for one sample. */
inline float
alphaFromSigma(float sigma, float dt)
{
    return 1.0f - std::exp(-sigma * dt);
}

} // namespace asdr::nerf

#endif // ASDR_NERF_VOLUME_RENDER_HPP
