#include "nerf/ngp_field.hpp"

#include <cmath>

#include "nerf/sh_encoding.hpp"
#include "util/logging.hpp"

namespace asdr::nerf {

namespace {

float
softplus(float x)
{
    // Numerically-stable softplus.
    if (x > 20.0f)
        return x;
    return std::log1p(std::exp(x));
}

float
sigmoid(float x)
{
    return 1.0f / (1.0f + std::exp(-x));
}

/** Loss + output-side gradients of one distillation sample. */
struct SampleGrads
{
    float loss = 0.0f;
    float dlogits[3] = {};
    float dsigma_raw = 0.0f; ///< dL/d(raw density logit geo[0])
};

/**
 * The ONE place the distillation loss math lives -- trainStep and
 * trainBatch both call it, which is what keeps them bit-identical.
 * Density: squared error in log1p space keeps the wide sigma range
 * well-conditioned. Color: squared error weighted by target occupancy,
 * so the color network spends capacity where matter is.
 */
SampleGrads
sampleLossGrads(const InstantNgpField::TrainSample &s, float geo0,
                const float logits[3])
{
    const float sigma = InstantNgpField::sigmaActivation(geo0);
    const Vec3 c{sigmoid(logits[0]), sigmoid(logits[1]),
                 sigmoid(logits[2])};

    const float dlog = std::log1p(sigma) - std::log1p(s.sigma_target);
    const float occ = 1.0f - std::exp(-s.sigma_target * 0.05f);
    const float cw = 0.02f + occ;
    const Vec3 cdiff = c - s.color_target;

    SampleGrads g;
    g.loss = dlog * dlog + cw * (cdiff.x * cdiff.x + cdiff.y * cdiff.y +
                                 cdiff.z * cdiff.z);
    g.dlogits[0] = cw * 2.0f * cdiff.x * c.x * (1.0f - c.x);
    g.dlogits[1] = cw * 2.0f * cdiff.y * c.y * (1.0f - c.y);
    g.dlogits[2] = cw * 2.0f * cdiff.z * c.z * (1.0f - c.z);
    // dL/d(raw sigma): chain through log1p and softplus.
    const float dsigma = 2.0f * dlog / (1.0f + sigma);
    g.dsigma_raw = dsigma * sigmoid(geo0 - 1.0f);
    return g;
}

} // namespace

NgpModelConfig
NgpModelConfig::reference()
{
    NgpModelConfig cfg;
    cfg.grid.levels = 16;
    cfg.grid.log2_table_size = 19;
    cfg.grid.features_per_level = 2;
    cfg.grid.base_resolution = 16;
    cfg.grid.max_resolution = 512;
    cfg.density_hidden = {64};
    cfg.color_hidden = {128, 128, 128};
    return cfg;
}

NgpModelConfig
NgpModelConfig::fast()
{
    NgpModelConfig cfg;
    cfg.grid.levels = 16;
    cfg.grid.log2_table_size = 15;
    cfg.grid.features_per_level = 2;
    cfg.grid.base_resolution = 16;
    cfg.grid.max_resolution = 256;
    cfg.density_hidden = {48};
    cfg.color_hidden = {64, 64};
    return cfg;
}

InstantNgpField::InstantNgpField(const NgpModelConfig &cfg, uint64_t seed)
    : cfg_(cfg), grid_(cfg.grid, seed),
      density_mlp_({cfg.grid.levels * cfg.grid.features_per_level,
                    cfg.density_hidden, kGeoFeatures},
                   seed ^ 0xD57ull),
      color_mlp_({(kGeoFeatures - 1) + kShCoeffs, cfg.color_hidden, 3},
                 seed ^ 0xC010Bull)
{
}

float
InstantNgpField::sigmaActivation(float raw)
{
    return softplus(raw - 1.0f);
}

DensityOutput
InstantNgpField::density(const Vec3 &pos) const
{
    thread_local std::vector<float> feat;
    feat.resize(size_t(grid_.featureDim()));
    grid_.encode(pos, feat.data());

    DensityOutput out;
    density_mlp_.forward(feat.data(), out.geo.data());
    out.sigma = sigmaActivation(out.geo[0]);
    return out;
}

void
InstantNgpField::densityBatch(const Vec3 *pos, int count,
                              DensityOutput *out) const
{
    const int fd = grid_.featureDim();
    thread_local std::vector<float> feat, geo;
    feat.resize(size_t(fd) * size_t(count));
    geo.resize(size_t(kGeoFeatures) * size_t(count));

    EncodeReuseStats *stats =
        encode_stats_.load(std::memory_order_acquire);
    if (stats) {
        if (stats_thread_ == std::thread::id())
            stats_thread_ = std::this_thread::get_id();
        ASDR_ASSERT(stats_thread_ == std::this_thread::get_id(),
                    "reuse-stats hook requires a single-threaded render");
    }
    grid_.encodeBatch(pos, count, feat.data(), fd, stats);
    density_mlp_.forwardBatch(feat.data(), count, fd, geo.data(),
                              kGeoFeatures);

    for (int p = 0; p < count; ++p) {
        const float *g = geo.data() + size_t(p) * size_t(kGeoFeatures);
        std::copy(g, g + kGeoFeatures, out[p].geo.begin());
        std::fill(out[p].geo.begin() + kGeoFeatures, out[p].geo.end(),
                  0.0f);
        out[p].sigma = sigmaActivation(g[0]);
    }
}

void
InstantNgpField::colorBatch(const Vec3 *pos, const Vec3 &dir,
                            const DensityOutput *den, int count,
                            Vec3 *out) const
{
    (void)pos;
    constexpr int kColorIn = (kGeoFeatures - 1) + kShCoeffs;
    thread_local std::vector<float> cin, logits;
    cin.resize(size_t(kColorIn) * size_t(count));
    logits.resize(3 * size_t(count));

    // One shared direction: the SH encoding is computed once and copied
    // into every row (bit-identical to re-running shEncode per point).
    float sh[kShCoeffs];
    shEncode(dir, sh);
    for (int p = 0; p < count; ++p) {
        float *row = cin.data() + size_t(p) * size_t(kColorIn);
        for (int i = 0; i < kGeoFeatures - 1; ++i)
            row[i] = den[p].geo[size_t(i + 1)];
        std::copy(sh, sh + kShCoeffs, row + (kGeoFeatures - 1));
    }

    color_mlp_.forwardBatch(cin.data(), count, kColorIn, logits.data(), 3);
    for (int p = 0; p < count; ++p) {
        const float *l = logits.data() + size_t(p) * 3;
        out[p] = {sigmoid(l[0]), sigmoid(l[1]), sigmoid(l[2])};
    }
}

Vec3
InstantNgpField::color(const Vec3 &pos, const Vec3 &dir,
                       const DensityOutput &den) const
{
    (void)pos; // color depends on pos only through the geometry features
    float cin[(kGeoFeatures - 1) + kShCoeffs];
    for (int i = 0; i < kGeoFeatures - 1; ++i)
        cin[i] = den.geo[size_t(i + 1)];
    shEncode(dir, cin + (kGeoFeatures - 1));

    float logits[3];
    color_mlp_.forward(cin, logits);
    return {sigmoid(logits[0]), sigmoid(logits[1]), sigmoid(logits[2])};
}

void
InstantNgpField::traceLookups(const Vec3 &pos, LookupSink &sink) const
{
    const GridGeometry &geom = grid_.geometry();
    VertexLookup lookups[32 * 8];
    size_t n = 0;
    for (int l = 0; l < geom.levels(); ++l) {
        Vec3i voxel;
        Vec3 frac;
        geom.locate(l, pos, voxel, frac);
        Vec3i verts[8];
        GridGeometry::voxelVertices(voxel, verts);
        for (int i = 0; i < 8; ++i) {
            lookups[n].level = uint16_t(l);
            lookups[n].vertex = verts[i];
            lookups[n].index = geom.index(l, verts[i]);
            ++n;
        }
    }
    sink.onPointLookups(lookups, n);
}

TableSchema
InstantNgpField::tableSchema() const
{
    return schemaFromGeometry(grid_.geometry());
}

FieldCosts
InstantNgpField::costs() const
{
    FieldCosts costs;
    costs.encode_flops = grid_.encodeFlops();
    costs.density_flops = 2.0 * density_mlp_.forwardMacs();
    costs.color_flops = 2.0 * color_mlp_.forwardMacs() + shEncodeFlops();
    costs.lookups_per_point = grid_.geometry().levels() * 8;

    auto shapes = [](const Mlp &mlp) {
        std::vector<LayerShape> out;
        std::vector<int> dims;
        dims.push_back(mlp.config().input);
        for (int h : mlp.config().hidden)
            dims.push_back(h);
        dims.push_back(mlp.config().output);
        for (size_t i = 0; i + 1 < dims.size(); ++i)
            out.push_back({dims[i], dims[i + 1]});
        return out;
    };
    costs.density_layers = shapes(density_mlp_);
    costs.color_layers = shapes(color_mlp_);
    return costs;
}

std::string
InstantNgpField::describe() const
{
    return "InstantNGP(L=" + std::to_string(cfg_.grid.levels) +
           ",T=2^" + std::to_string(cfg_.grid.log2_table_size) + ")";
}

float
InstantNgpField::trainStep(const TrainSample &s)
{
    // ---- forward ----
    thread_local HashGrid::EncodeCache enc_cache;
    thread_local std::vector<float> feat;
    feat.resize(size_t(grid_.featureDim()));
    grid_.encode(s.pos, feat.data(), enc_cache);

    MlpWorkspace ws_density;
    float geo[kGeoFeatures];
    density_mlp_.forward(feat.data(), geo, ws_density);

    constexpr int kColorIn = (kGeoFeatures - 1) + kShCoeffs;
    float cin[kColorIn];
    for (int i = 0; i < kGeoFeatures - 1; ++i)
        cin[i] = geo[i + 1];
    shEncode(s.dir, cin + (kGeoFeatures - 1));

    MlpWorkspace ws_color;
    float logits[3];
    color_mlp_.forward(cin, logits, ws_color);

    // ---- loss + backward (shared math: sampleLossGrads) ----
    const SampleGrads g = sampleLossGrads(s, geo[0], logits);

    float dcin[kColorIn];
    color_mlp_.backward(ws_color, g.dlogits, dcin);

    float dgeo[kGeoFeatures];
    dgeo[0] = g.dsigma_raw;
    for (int i = 1; i < kGeoFeatures; ++i)
        dgeo[i] = dcin[i - 1];

    thread_local std::vector<float> dfeat;
    dfeat.resize(size_t(grid_.featureDim()));
    density_mlp_.backward(ws_density, dgeo, dfeat.data());
    grid_.backward(enc_cache, dfeat.data());

    return g.loss;
}

double
InstantNgpField::trainBatch(const TrainSample *samples, int count)
{
    constexpr int kColorIn = (kGeoFeatures - 1) + kShCoeffs;
    const int fd = grid_.featureDim();

    // ---- batched forward ----
    // Encoding stays per-sample (backward needs each sample's corner
    // indices/weights in its EncodeCache), writing rows of one feature
    // matrix; both MLPs then run the batched lane kernel over it.
    thread_local std::vector<HashGrid::EncodeCache> caches;
    thread_local std::vector<float> feat, geo, cin, logits;
    thread_local MlpBatchWorkspace ws_density, ws_color;
    if (int(caches.size()) < count)
        caches.resize(size_t(count));
    feat.resize(size_t(fd) * size_t(count));
    geo.resize(size_t(kGeoFeatures) * size_t(count));
    cin.resize(size_t(kColorIn) * size_t(count));
    logits.resize(3 * size_t(count));

    for (int p = 0; p < count; ++p)
        grid_.encode(samples[p].pos, feat.data() + size_t(p) * size_t(fd),
                     caches[size_t(p)]);
    density_mlp_.forwardBatch(feat.data(), count, fd, geo.data(),
                              kGeoFeatures, ws_density);
    for (int p = 0; p < count; ++p) {
        const float *g = geo.data() + size_t(p) * size_t(kGeoFeatures);
        float *row = cin.data() + size_t(p) * size_t(kColorIn);
        for (int i = 0; i < kGeoFeatures - 1; ++i)
            row[i] = g[i + 1];
        shEncode(samples[p].dir, row + (kGeoFeatures - 1));
    }
    color_mlp_.forwardBatch(cin.data(), count, kColorIn, logits.data(), 3,
                            ws_color);

    // ---- per-sample loss + backward, in sample order ----
    // Gradients accumulate in exactly trainStep()'s order, so the
    // resulting optimizer state is bit-identical to the scalar loop.
    double total_loss = 0.0;
    thread_local std::vector<float> dfeat;
    dfeat.resize(size_t(fd));
    for (int p = 0; p < count; ++p) {
        const float *gp = geo.data() + size_t(p) * size_t(kGeoFeatures);
        const SampleGrads g =
            sampleLossGrads(samples[p], gp[0],
                            logits.data() + size_t(p) * 3);
        total_loss += g.loss;

        float dcin[kColorIn];
        color_mlp_.backward(ws_color, p, g.dlogits, dcin);

        float dgeo[kGeoFeatures];
        dgeo[0] = g.dsigma_raw;
        for (int i = 1; i < kGeoFeatures; ++i)
            dgeo[i] = dcin[i - 1];

        density_mlp_.backward(ws_density, p, dgeo, dfeat.data());
        grid_.backward(caches[size_t(p)], dfeat.data());
    }
    return total_loss;
}

void
InstantNgpField::zeroGrads()
{
    grid_.zeroGrad();
    density_mlp_.zeroGrad();
    color_mlp_.zeroGrad();
}

void
InstantNgpField::applyAdam(float lr)
{
    grid_.adamStep(lr);
    density_mlp_.adamStep(lr);
    color_mlp_.adamStep(lr);
}

} // namespace asdr::nerf
