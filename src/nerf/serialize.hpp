/**
 * @file
 * Binary serialization of trained fields so benchmark binaries can share
 * fitted weights instead of re-training per process. Format: magic,
 * version, config ints, then raw float blobs (grid embeddings, density
 * MLP, color MLP). Files live under the directory returned by
 * dataDir() (default "./asdr_data", override with $ASDR_DATA_DIR).
 */

#ifndef ASDR_NERF_SERIALIZE_HPP
#define ASDR_NERF_SERIALIZE_HPP

#include <string>

#include "nerf/ngp_field.hpp"

namespace asdr::nerf {

/** Directory for cached artifacts; created on first use. */
std::string dataDir();

/** Write the field's parameters to `path`. @return success */
bool saveField(const InstantNgpField &field, const std::string &path);

/**
 * Load parameters into `field`; fails (returns false) when the file is
 * missing or was written with a different model configuration.
 */
bool loadField(InstantNgpField &field, const std::string &path);

/** Canonical cache path for a fitted scene field. */
std::string fieldCachePath(const std::string &scene_name,
                           const std::string &preset);

} // namespace asdr::nerf

#endif // ASDR_NERF_SERIALIZE_HPP
