/**
 * @file
 * Instant-NGP radiance field: multiresolution hash encoding -> density
 * MLP -> (geometry features + SH direction encoding) -> color MLP, with
 * full backpropagation support so scenes can be distilled into it
 * (nerf/trainer).
 */

#ifndef ASDR_NERF_NGP_FIELD_HPP
#define ASDR_NERF_NGP_FIELD_HPP

#include <atomic>
#include <memory>
#include <thread>

#include "nerf/field.hpp"
#include "nerf/hash_grid.hpp"
#include "nerf/mlp.hpp"

namespace asdr::nerf {

/** Hyperparameters of the full Instant-NGP model. */
struct NgpModelConfig
{
    HashGridConfig grid;
    std::vector<int> density_hidden{64};
    std::vector<int> color_hidden{128, 128, 128};

    /**
     * Paper-faithful shape: color network carries ~92% of MLP FLOPs,
     * density ~8% (§3 Challenge 2). Used for all cost accounting.
     */
    static NgpModelConfig reference();

    /**
     * Host-speed shape for the fitted quality experiments (smaller color
     * network; the *counts* of executions are what quality experiments
     * measure, not FLOPs).
     */
    static NgpModelConfig fast();
};

class InstantNgpField : public RadianceField
{
  public:
    explicit InstantNgpField(const NgpModelConfig &cfg, uint64_t seed = 42);

    // RadianceField interface
    DensityOutput density(const Vec3 &pos) const override;
    Vec3 color(const Vec3 &pos, const Vec3 &dir,
               const DensityOutput &den) const override;
    /** Fast path: batch hash-grid encode into a contiguous feature
     *  matrix, then a cache-blocked batched MLP forward. */
    void densityBatch(const Vec3 *pos, int count,
                      DensityOutput *out) const override;
    void colorBatch(const Vec3 *pos, const Vec3 &dir,
                    const DensityOutput *den, int count,
                    Vec3 *out) const override;
    void traceLookups(const Vec3 &pos, LookupSink &sink) const override;
    TableSchema tableSchema() const override;
    FieldCosts costs() const override;
    std::string describe() const override;

    /** Grid structure (resolutions, dense/hashed, table sizes). */
    const GridGeometry &gridGeometry() const { return grid_.geometry(); }

    // --- training (distillation) ---
    struct TrainSample
    {
        Vec3 pos;
        Vec3 dir;
        float sigma_target = 0.0f;
        Vec3 color_target;
    };

    /**
     * One supervised sample: forward, loss, backward; gradients
     * accumulate until applyAdam(). Returns the sample's loss.
     */
    float trainStep(const TrainSample &s);

    /**
     * A whole batch of supervised samples: both MLP forwards stream
     * through Mlp::forwardBatch (register-blocked lanes) while the
     * backward replays each sample in order from the retained batch
     * activations. Losses, gradients, and therefore the trained field
     * are bit-identical to `count` trainStep() calls in the same order;
     * only the data movement changes. Returns the summed loss.
     */
    double trainBatch(const TrainSample *samples, int count);

    void zeroGrads();
    void applyAdam(float lr);

    HashGrid &grid() { return grid_; }
    const HashGrid &grid() const { return grid_; }
    Mlp &densityMlp() { return density_mlp_; }
    Mlp &colorMlp() { return color_mlp_; }
    const Mlp &densityMlp() const { return density_mlp_; }
    const Mlp &colorMlp() const { return color_mlp_; }
    const NgpModelConfig &modelConfig() const { return cfg_; }

    /** sigma = softplus(raw - 1): small initial density, smooth grads. */
    static float sigmaActivation(float raw);

    /**
     * Attach a reuse-stats accumulator to the batched encode path: every
     * densityBatch() call adds its per-level lookup/unique/coherent
     * counts, so a render measures the host-side data reuse the paper's
     * Fig. 15 predicts. The accumulator is written without locking --
     * attach only for single-threaded renders (densityBatch panics if a
     * second thread calls in while the hook is attached). nullptr
     * detaches. Const: the hook observes the encode, it does not alter
     * the field (engine sessions attach through a const reference).
     */
    void setEncodeReuseStats(EncodeReuseStats *stats) const
    {
        encode_stats_.store(stats, std::memory_order_release);
        stats_thread_ = std::thread::id();
    }

    /**
     * Claim the hook iff no accumulator is currently attached -- engine
     * sessions sharing one field race for it, and only one may win
     * (the hook is a single pointer and strictly single-threaded).
     * Release with detachEncodeReuseStats(the same pointer).
     */
    bool tryAttachEncodeReuseStats(EncodeReuseStats *stats) const
    {
        EncodeReuseStats *expected = nullptr;
        if (!encode_stats_.compare_exchange_strong(
                expected, stats, std::memory_order_acq_rel))
            return false;
        stats_thread_ = std::thread::id();
        return true;
    }

    /** Release a tryAttach claim (no-op when `stats` does not hold it). */
    void detachEncodeReuseStats(EncodeReuseStats *stats) const
    {
        EncodeReuseStats *expected = stats;
        encode_stats_.compare_exchange_strong(expected, nullptr,
                                              std::memory_order_acq_rel);
    }

  private:
    NgpModelConfig cfg_;
    HashGrid grid_;
    Mlp density_mlp_;
    Mlp color_mlp_;
    mutable std::atomic<EncodeReuseStats *> encode_stats_{nullptr};
    /** First thread to run densityBatch while the hook is attached. */
    mutable std::thread::id stats_thread_;
};

} // namespace asdr::nerf

#endif // ASDR_NERF_NGP_FIELD_HPP
