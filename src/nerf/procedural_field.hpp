/**
 * @file
 * Radiance field that answers density/color queries straight from an
 * analytic scene while exposing the exact hash-grid lookup structure and
 * the reference (paper-ratio) MLP cost profile. The performance sweeps
 * use this field: the architecture only observes operation counts and
 * addresses, which are identical to the trained field's, while the host
 * avoids NN arithmetic.
 */

#ifndef ASDR_NERF_PROCEDURAL_FIELD_HPP
#define ASDR_NERF_PROCEDURAL_FIELD_HPP

#include <memory>

#include "nerf/field.hpp"
#include "nerf/ngp_field.hpp"
#include "scene/analytic_scene.hpp"

namespace asdr::nerf {

class ProceduralField : public RadianceField
{
  public:
    /**
     * @param scene the analytic scene to answer queries from
     * @param model the model whose lookup/FLOP structure to report
     *        (defaults to NgpModelConfig::reference())
     */
    explicit ProceduralField(const scene::AnalyticScene &scene,
                             const NgpModelConfig &model =
                                 NgpModelConfig::reference());

    DensityOutput density(const Vec3 &pos) const override;
    Vec3 color(const Vec3 &pos, const Vec3 &dir,
               const DensityOutput &den) const override;
    /** Loop in-place over the analytic scene (no virtual dispatch per
     *  point; the scene query itself is the whole cost here). */
    void densityBatch(const Vec3 *pos, int count,
                      DensityOutput *out) const override;
    void colorBatch(const Vec3 *pos, const Vec3 &dir,
                    const DensityOutput *den, int count,
                    Vec3 *out) const override;
    void traceLookups(const Vec3 &pos, LookupSink &sink) const override;
    TableSchema tableSchema() const override;
    FieldCosts costs() const override;
    std::string describe() const override;

    /** Grid structure (resolutions, dense/hashed, table sizes). */
    const GridGeometry &gridGeometry() const { return geom_; }

  private:
    const scene::AnalyticScene &scene_;
    GridGeometry geom_;
    FieldCosts costs_;
};

} // namespace asdr::nerf

#endif // ASDR_NERF_PROCEDURAL_FIELD_HPP
