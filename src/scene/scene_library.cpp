#include "scene/scene_library.hpp"

#include <algorithm>

#include "util/logging.hpp"
#include "util/rng.hpp"

namespace asdr::scene {

namespace {

using Shape = Primitive::Shape;
using Pattern = Primitive::Pattern;

Primitive
prim(Shape shape, Vec3 center, Vec3 params, Vec3 color, float amp = 40.0f,
     float softness = 0.012f)
{
    Primitive p;
    p.shape = shape;
    p.center = center;
    p.params = params;
    p.color_a = color;
    p.color_b = color * 0.45f;
    p.density_amp = amp;
    p.softness = softness;
    return p;
}

/** Scatter `count` small spheres around `center` within `radius`. */
void
scatterBlobs(std::vector<Primitive> &prims, Rng &rng, Vec3 center,
             float radius, int count, float blob_r, Vec3 color_lo,
             Vec3 color_hi)
{
    for (int i = 0; i < count; ++i) {
        Vec3 offset = (rng.nextVec3() - Vec3(0.5f)) * (2.0f * radius);
        Vec3 pos = center + offset;
        pos = vmin(vmax(pos, Vec3(0.05f)), Vec3(0.95f));
        Vec3 color = lerp(color_lo, color_hi, rng.nextFloat());
        float r = blob_r * rng.nextRange(0.6f, 1.4f);
        prims.push_back(
            prim(Shape::Sphere, pos, Vec3(r, r, r), color, 45.0f, 0.008f));
    }
}

std::vector<Primitive>
buildMic()
{
    // Thin microphone on a stand: sparse scene, large empty background.
    std::vector<Primitive> prims;
    prims.push_back(prim(Shape::Sphere, {0.5f, 0.72f, 0.5f},
                         {0.085f, 0, 0}, {0.75f, 0.75f, 0.78f}, 50.0f));
    prims.back().pattern = Pattern::Checker;
    prims.back().pattern_scale = 24.0f;
    prims.back().color_b = {0.25f, 0.25f, 0.28f};
    prims.push_back(prim(Shape::CylinderY, {0.5f, 0.45f, 0.5f},
                         {0.02f, 0.22f, 0}, {0.35f, 0.35f, 0.4f}, 60.0f));
    prims.push_back(prim(Shape::CylinderY, {0.5f, 0.2f, 0.5f},
                         {0.11f, 0.02f, 0}, {0.2f, 0.2f, 0.22f}, 60.0f));
    return prims;
}

std::vector<Primitive>
buildLego()
{
    // Blocky excavator: boxes with checkered "stud" texture on a plate.
    std::vector<Primitive> prims;
    Vec3 yellow{0.85f, 0.65f, 0.1f};
    Vec3 grey{0.45f, 0.45f, 0.48f};
    prims.push_back(prim(Shape::Box, {0.5f, 0.22f, 0.5f},
                         {0.28f, 0.035f, 0.2f}, grey, 55.0f));
    prims.back().pattern = Pattern::Checker;
    prims.back().pattern_scale = 20.0f;
    prims.push_back(prim(Shape::Box, {0.47f, 0.34f, 0.5f},
                         {0.14f, 0.08f, 0.12f}, yellow, 55.0f));
    prims.back().pattern = Pattern::StripesX;
    prims.back().pattern_scale = 10.0f;
    prims.back().color_b = {0.6f, 0.4f, 0.05f};
    prims.push_back(prim(Shape::Box, {0.44f, 0.47f, 0.5f},
                         {0.075f, 0.055f, 0.075f}, yellow, 55.0f));
    // Boom arm and bucket.
    prims.push_back(prim(Shape::Box, {0.64f, 0.45f, 0.5f},
                         {0.125f, 0.022f, 0.03f}, yellow, 55.0f));
    prims.push_back(prim(Shape::Box, {0.76f, 0.36f, 0.5f},
                         {0.04f, 0.055f, 0.055f}, grey, 55.0f));
    // Tracks.
    prims.push_back(prim(Shape::Box, {0.5f, 0.16f, 0.36f},
                         {0.24f, 0.035f, 0.035f}, {0.15f, 0.15f, 0.15f},
                         60.0f));
    prims.push_back(prim(Shape::Box, {0.5f, 0.16f, 0.64f},
                         {0.24f, 0.035f, 0.035f}, {0.15f, 0.15f, 0.15f},
                         60.0f));
    return prims;
}

std::vector<Primitive>
buildHotdog()
{
    std::vector<Primitive> prims;
    prims.push_back(prim(Shape::CylinderY, {0.5f, 0.2f, 0.5f},
                         {0.3f, 0.02f, 0}, {0.92f, 0.92f, 0.95f}, 50.0f));
    prims.push_back(prim(Shape::Ellipsoid, {0.45f, 0.27f, 0.45f},
                         {0.21f, 0.045f, 0.06f}, {0.8f, 0.6f, 0.35f}, 50.0f));
    prims.push_back(prim(Shape::Ellipsoid, {0.55f, 0.27f, 0.58f},
                         {0.21f, 0.045f, 0.06f}, {0.8f, 0.6f, 0.35f}, 50.0f));
    prims.push_back(prim(Shape::Ellipsoid, {0.45f, 0.305f, 0.45f},
                         {0.17f, 0.018f, 0.025f}, {0.75f, 0.25f, 0.1f},
                         45.0f));
    prims.back().pattern = Pattern::StripesX;
    prims.back().pattern_scale = 14.0f;
    prims.back().color_b = {0.85f, 0.75f, 0.2f};
    return prims;
}

std::vector<Primitive>
buildChair()
{
    std::vector<Primitive> prims;
    Vec3 wood{0.55f, 0.35f, 0.18f};
    Vec3 cushion{0.7f, 0.15f, 0.15f};
    prims.push_back(prim(Shape::Box, {0.5f, 0.38f, 0.5f},
                         {0.16f, 0.03f, 0.16f}, cushion, 55.0f));
    prims.back().pattern = Pattern::Checker;
    prims.back().pattern_scale = 16.0f;
    prims.back().color_b = {0.5f, 0.1f, 0.1f};
    prims.push_back(prim(Shape::Box, {0.5f, 0.58f, 0.64f},
                         {0.16f, 0.17f, 0.025f}, wood, 55.0f));
    float lx[4] = {0.37f, 0.63f, 0.37f, 0.63f};
    float lz[4] = {0.38f, 0.38f, 0.62f, 0.62f};
    for (int i = 0; i < 4; ++i)
        prims.push_back(prim(Shape::CylinderY, {lx[i], 0.24f, lz[i]},
                             {0.022f, 0.12f, 0}, wood, 60.0f));
    return prims;
}

std::vector<Primitive>
buildFicus()
{
    std::vector<Primitive> prims;
    prims.push_back(prim(Shape::CylinderY, {0.5f, 0.18f, 0.5f},
                         {0.09f, 0.055f, 0}, {0.5f, 0.3f, 0.2f}, 55.0f));
    prims.push_back(prim(Shape::CylinderY, {0.5f, 0.38f, 0.5f},
                         {0.018f, 0.16f, 0}, {0.4f, 0.25f, 0.12f}, 60.0f));
    Rng rng(0xF1C05ull, 11);
    scatterBlobs(prims, rng, {0.5f, 0.62f, 0.5f}, 0.17f, 36, 0.032f,
                 {0.1f, 0.45f, 0.12f}, {0.25f, 0.7f, 0.2f});
    return prims;
}

std::vector<Primitive>
buildShip()
{
    std::vector<Primitive> prims;
    // Water surface: thin, broad box with stripes.
    prims.push_back(prim(Shape::Box, {0.5f, 0.16f, 0.5f},
                         {0.42f, 0.015f, 0.42f}, {0.1f, 0.25f, 0.4f}, 35.0f,
                         0.02f));
    prims.back().pattern = Pattern::StripesX;
    prims.back().pattern_scale = 9.0f;
    prims.back().color_b = {0.15f, 0.35f, 0.5f};
    // Hull and masts.
    prims.push_back(prim(Shape::Ellipsoid, {0.5f, 0.24f, 0.5f},
                         {0.24f, 0.07f, 0.1f}, {0.4f, 0.26f, 0.13f}, 50.0f));
    prims.push_back(prim(Shape::CylinderY, {0.42f, 0.45f, 0.5f},
                         {0.012f, 0.18f, 0}, {0.35f, 0.22f, 0.1f}, 60.0f));
    prims.push_back(prim(Shape::CylinderY, {0.58f, 0.42f, 0.5f},
                         {0.012f, 0.15f, 0}, {0.35f, 0.22f, 0.1f}, 60.0f));
    prims.push_back(prim(Shape::Box, {0.42f, 0.5f, 0.5f},
                         {0.002f, 0.09f, 0.1f}, {0.9f, 0.88f, 0.8f}, 40.0f));
    return prims;
}

std::vector<Primitive>
buildPalace()
{
    std::vector<Primitive> prims;
    Vec3 stone{0.75f, 0.7f, 0.6f};
    Vec3 roof{0.5f, 0.2f, 0.15f};
    prims.push_back(prim(Shape::Box, {0.5f, 0.3f, 0.5f},
                         {0.26f, 0.14f, 0.2f}, stone, 55.0f));
    prims.back().pattern = Pattern::Checker;
    prims.back().pattern_scale = 18.0f;
    prims.back().color_b = {0.6f, 0.55f, 0.45f};
    float tx[4] = {0.26f, 0.74f, 0.26f, 0.74f};
    float tz[4] = {0.32f, 0.32f, 0.68f, 0.68f};
    for (int i = 0; i < 4; ++i) {
        prims.push_back(prim(Shape::CylinderY, {tx[i], 0.42f, tz[i]},
                             {0.05f, 0.26f, 0}, stone, 55.0f));
        prims.push_back(prim(Shape::Sphere, {tx[i], 0.7f, tz[i]},
                             {0.06f, 0, 0}, roof, 50.0f));
    }
    prims.push_back(prim(Shape::Box, {0.5f, 0.49f, 0.5f},
                         {0.18f, 0.05f, 0.13f}, roof, 50.0f));
    return prims;
}

std::vector<Primitive>
buildFountain()
{
    // Dense, textured real-world scene: fountain + cluttered plaza.
    std::vector<Primitive> prims;
    prims.push_back(prim(Shape::Box, {0.5f, 0.14f, 0.5f},
                         {0.44f, 0.04f, 0.44f}, {0.55f, 0.52f, 0.48f}, 45.0f,
                         0.02f));
    prims.back().pattern = Pattern::Checker;
    prims.back().pattern_scale = 14.0f;
    prims.back().color_b = {0.4f, 0.38f, 0.34f};
    prims.push_back(prim(Shape::CylinderY, {0.5f, 0.23f, 0.5f},
                         {0.2f, 0.05f, 0}, {0.6f, 0.58f, 0.55f}, 50.0f));
    prims.push_back(prim(Shape::CylinderY, {0.5f, 0.38f, 0.5f},
                         {0.05f, 0.12f, 0}, {0.5f, 0.48f, 0.45f}, 50.0f));
    prims.push_back(prim(Shape::Sphere, {0.5f, 0.52f, 0.5f},
                         {0.07f, 0, 0}, {0.35f, 0.55f, 0.7f}, 35.0f, 0.03f));
    Rng rng(0xF0047ull, 3);
    scatterBlobs(prims, rng, {0.5f, 0.25f, 0.5f}, 0.36f, 26, 0.05f,
                 {0.35f, 0.3f, 0.25f}, {0.65f, 0.6f, 0.5f});
    return prims;
}

std::vector<Primitive>
buildFamily()
{
    // Group of statues on a base (Tanks&Temples "Family").
    std::vector<Primitive> prims;
    prims.push_back(prim(Shape::Box, {0.5f, 0.17f, 0.5f},
                         {0.3f, 0.05f, 0.22f}, {0.5f, 0.47f, 0.42f}, 50.0f));
    float px[4] = {0.36f, 0.48f, 0.6f, 0.68f};
    float ph[4] = {0.14f, 0.18f, 0.16f, 0.1f};
    for (int i = 0; i < 4; ++i) {
        Vec3 bronze{0.45f + 0.05f * i, 0.32f, 0.2f};
        prims.push_back(prim(Shape::Ellipsoid, {px[i], 0.26f + ph[i], 0.5f},
                             {0.05f, ph[i], 0.05f}, bronze, 50.0f));
        prims.push_back(prim(Shape::Sphere,
                             {px[i], 0.3f + 2.0f * ph[i], 0.5f},
                             {0.035f, 0, 0}, bronze * 1.15f, 50.0f));
    }
    return prims;
}

std::vector<Primitive>
buildFox()
{
    // Frame-filling close-up (iNGP fox video): dense foreground.
    std::vector<Primitive> prims;
    Vec3 fur{0.8f, 0.45f, 0.15f};
    Vec3 white{0.9f, 0.88f, 0.85f};
    prims.push_back(prim(Shape::Ellipsoid, {0.5f, 0.48f, 0.55f},
                         {0.24f, 0.2f, 0.26f}, fur, 45.0f, 0.025f));
    prims.back().pattern = Pattern::GradientY;
    prims.back().color_b = white;
    prims.push_back(prim(Shape::Ellipsoid, {0.5f, 0.36f, 0.38f},
                         {0.11f, 0.09f, 0.13f}, white, 45.0f, 0.02f));
    prims.push_back(prim(Shape::Ellipsoid, {0.38f, 0.68f, 0.55f},
                         {0.05f, 0.09f, 0.03f}, fur, 50.0f));
    prims.push_back(prim(Shape::Ellipsoid, {0.62f, 0.68f, 0.55f},
                         {0.05f, 0.09f, 0.03f}, fur, 50.0f));
    prims.push_back(prim(Shape::Sphere, {0.44f, 0.52f, 0.34f},
                         {0.025f, 0, 0}, {0.05f, 0.05f, 0.05f}, 60.0f));
    prims.push_back(prim(Shape::Sphere, {0.56f, 0.52f, 0.34f},
                         {0.025f, 0, 0}, {0.05f, 0.05f, 0.05f}, 60.0f));
    // Blurry background clutter filling the rest of the frustum.
    Rng rng(0xF0Full, 5);
    scatterBlobs(prims, rng, {0.5f, 0.4f, 0.78f}, 0.3f, 20, 0.07f,
                 {0.2f, 0.3f, 0.15f}, {0.45f, 0.5f, 0.3f});
    return prims;
}

struct SceneEntry
{
    SceneInfo info;
    std::vector<Primitive> (*builder)();
};

const std::vector<SceneEntry> &
registry()
{
    static const std::vector<SceneEntry> entries = [] {
        std::vector<SceneEntry> v;
        auto add = [&](const char *name, const char *dataset, int w, int h,
                       bool synthetic, std::vector<Primitive> (*builder)(),
                       Vec3 cam = {1.15f, 0.85f, -0.5f}) {
            SceneInfo info;
            info.name = name;
            info.dataset = dataset;
            info.full_width = w;
            info.full_height = h;
            info.synthetic = synthetic;
            info.cam_pos = cam;
            v.push_back({info, builder});
        };
        add("Mic", "Synthetic-NeRF", 800, 800, true, &buildMic);
        add("Hotdog", "Synthetic-NeRF", 800, 800, true, &buildHotdog,
            {0.9f, 1.0f, -0.6f});
        add("Ship", "Synthetic-NeRF", 800, 800, true, &buildShip,
            {1.2f, 0.75f, -0.4f});
        add("Chair", "Synthetic-NeRF", 800, 800, true, &buildChair);
        add("Ficus", "Synthetic-NeRF", 800, 800, true, &buildFicus);
        add("Lego", "Synthetic-NeRF", 800, 800, true, &buildLego,
            {1.2f, 0.8f, -0.45f});
        add("Palace", "Synthetic-NSVF", 800, 800, true, &buildPalace,
            {1.25f, 0.7f, -0.55f});
        add("Fountain", "BlendedMVS", 768, 576, false, &buildFountain,
            {1.1f, 0.65f, -0.6f});
        add("Family", "Tanks&Temples", 1920, 1080, false, &buildFamily,
            {1.05f, 0.6f, -0.7f});
        add("Fox", "Instant-NGP", 1080, 1920, false, &buildFox,
            {0.5f, 0.5f, -0.55f});
        return v;
    }();
    return entries;
}

} // namespace

std::vector<SceneInfo>
sceneList()
{
    std::vector<SceneInfo> infos;
    for (const auto &e : registry())
        infos.push_back(e.info);
    return infos;
}

SceneInfo
sceneInfo(const std::string &name)
{
    for (const auto &e : registry())
        if (e.info.name == name)
            return e.info;
    fatal("unknown scene '", name, "'");
}

std::unique_ptr<AnalyticScene>
createScene(const std::string &name)
{
    for (const auto &e : registry())
        if (e.info.name == name)
            return std::make_unique<AnalyticScene>(e.info, e.builder());
    fatal("unknown scene '", name, "'");
}

std::vector<std::string>
perfSceneNames()
{
    return {"Palace", "Fountain", "Family", "Fox", "Mic"};
}

std::vector<std::string>
allSceneNames()
{
    return {"Palace", "Fountain", "Family", "Fox",  "Mic",
            "Lego",   "Hotdog",   "Ficus",  "Chair", "Ship"};
}

std::vector<std::string>
syntheticSceneNames()
{
    return {"Lego", "Ship", "Hotdog", "Chair", "Mic", "Ficus"};
}

} // namespace asdr::scene
