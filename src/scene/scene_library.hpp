/**
 * @file
 * The named scene registry mirroring paper Table 1. Each scene is a
 * deterministic procedural composition whose *sparsity profile* matches
 * the role the scene plays in the paper's evaluation: Mic is a thin,
 * mostly-empty object (adaptive sampling shines), Fox is a frame-filling
 * close-up (adaptive sampling gains least), Fountain is dense and
 * textured, and so on.
 */

#ifndef ASDR_SCENE_SCENE_LIBRARY_HPP
#define ASDR_SCENE_SCENE_LIBRARY_HPP

#include <memory>
#include <string>
#include <vector>

#include "scene/analytic_scene.hpp"

namespace asdr::scene {

/** All Table 1 rows, in paper order. */
std::vector<SceneInfo> sceneList();

/** Look up a Table 1 row by (case-sensitive) scene name. */
SceneInfo sceneInfo(const std::string &name);

/** Instantiate a named analytic scene; fatal() on unknown name. */
std::unique_ptr<AnalyticScene> createScene(const std::string &name);

/** The five scenes used by the performance figures (17-20, 22, 25-27). */
std::vector<std::string> perfSceneNames();

/** All ten scenes, used by the quality figures (16, 24) and tables. */
std::vector<std::string> allSceneNames();

/** The six Synthetic-NeRF scenes of Table 3. */
std::vector<std::string> syntheticSceneNames();

} // namespace asdr::scene

#endif // ASDR_SCENE_SCENE_LIBRARY_HPP
