/**
 * @file
 * Analytic volumetric scenes built from soft signed-distance primitives.
 *
 * These stand in for the paper's datasets (Synthetic-NeRF, NSVF,
 * BlendedMVS, Tanks&Temples, iNGP-Fox): we cannot ship trained NeRF
 * checkpoints, so each named scene is a deterministic procedural density
 * + color field over the unit cube. Ground-truth images come from densely
 * sampled volume rendering of the analytic field, and the hash-grid NeRF
 * substrate is *fitted* to these fields by distillation (nerf/trainer),
 * which makes every quality comparison in the evaluation meaningful.
 */

#ifndef ASDR_SCENE_ANALYTIC_SCENE_HPP
#define ASDR_SCENE_ANALYTIC_SCENE_HPP

#include <memory>
#include <string>
#include <vector>

#include "util/vec.hpp"

namespace asdr::scene {

/** Density and emitted color at a point for a given view direction. */
struct SceneSample
{
    float sigma = 0.0f; ///< volume density (1/unit length)
    Vec3 color;         ///< emitted radiance, in [0,1]
};

/** One soft-SDF primitive with a color pattern. */
struct Primitive
{
    enum class Shape { Sphere, Box, Torus, CylinderY, Ellipsoid };
    enum class Pattern { Solid, Checker, GradientY, StripesX };

    Shape shape = Shape::Sphere;
    Vec3 center{0.5f, 0.5f, 0.5f};
    /** Shape parameters: Sphere r=params.x; Box half-extents = params;
     *  Torus major=params.x minor=params.y; CylinderY r=params.x
     *  halfheight=params.y; Ellipsoid radii = params. */
    Vec3 params{0.1f, 0.1f, 0.1f};
    Vec3 color_a{0.8f, 0.8f, 0.8f};
    Vec3 color_b{0.2f, 0.2f, 0.2f};
    Pattern pattern = Pattern::Solid;
    float pattern_scale = 8.0f; ///< checker/stripe frequency
    float density_amp = 40.0f;  ///< peak density inside the surface
    float softness = 0.015f;    ///< SDF-to-density transition width
    Vec3 shade_dir{0.0f, 1.0f, 0.0f}; ///< mild view-dependent tint axis

    /** Signed distance from `pos` to this primitive's surface. */
    float sdf(const Vec3 &pos) const;
    /** Base (view-independent) color at `pos`. */
    Vec3 baseColor(const Vec3 &pos) const;
};

/** Static description of a named scene (paper Table 1 row). */
struct SceneInfo
{
    std::string name;
    std::string dataset;   ///< e.g. "Synthetic-NeRF"
    int full_width = 800;  ///< paper-resolution frame
    int full_height = 800;
    bool synthetic = true;
    Vec3 cam_pos{0.5f, 0.6f, -0.9f};
    Vec3 look_at{0.5f, 0.5f, 0.5f};
    float fov_deg = 45.0f;
};

/**
 * A scene composed of soft primitives over the unit cube. Density is the
 * (capped) sum of primitive densities; color is the density-weighted
 * average of primitive colors with a mild view-dependent term, so the
 * color MLP of the fitted field has something real to learn.
 */
class AnalyticScene
{
  public:
    AnalyticScene(SceneInfo info, std::vector<Primitive> prims);

    const SceneInfo &info() const { return info_; }
    const std::vector<Primitive> &primitives() const { return prims_; }

    /** Full query: density and view-dependent color. */
    SceneSample sample(const Vec3 &pos, const Vec3 &dir) const;

    /** Density only (used by occupancy statistics and distillation). */
    float density(const Vec3 &pos) const;

    /** Fraction of uniformly-sampled unit-cube points with sigma below
     *  `thresh`; the "background fraction" the paper quotes (~40%). */
    double emptyFraction(float thresh = 0.5f, int samples = 20000) const;

  private:
    SceneInfo info_;
    std::vector<Primitive> prims_;
};

} // namespace asdr::scene

#endif // ASDR_SCENE_ANALYTIC_SCENE_HPP
