#include "scene/analytic_scene.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"
#include "util/rng.hpp"

namespace asdr::scene {

namespace {

float
sdSphere(const Vec3 &p, float r)
{
    return length(p) - r;
}

float
sdBox(const Vec3 &p, const Vec3 &half)
{
    Vec3 q{std::fabs(p.x) - half.x, std::fabs(p.y) - half.y,
           std::fabs(p.z) - half.z};
    Vec3 qpos = vmax(q, Vec3(0.0f));
    float outside = length(qpos);
    float inside = std::min(std::max({q.x, q.y, q.z}), 0.0f);
    return outside + inside;
}

float
sdTorus(const Vec3 &p, float major, float minor)
{
    float qx = std::sqrt(p.x * p.x + p.z * p.z) - major;
    return std::sqrt(qx * qx + p.y * p.y) - minor;
}

float
sdCylinderY(const Vec3 &p, float r, float halfh)
{
    float dxz = std::sqrt(p.x * p.x + p.z * p.z) - r;
    float dy = std::fabs(p.y) - halfh;
    float outside =
        std::sqrt(std::max(dxz, 0.0f) * std::max(dxz, 0.0f) +
                  std::max(dy, 0.0f) * std::max(dy, 0.0f));
    return outside + std::min(std::max(dxz, dy), 0.0f);
}

float
sdEllipsoid(const Vec3 &p, const Vec3 &radii)
{
    Vec3 q{p.x / radii.x, p.y / radii.y, p.z / radii.z};
    float k = length(q);
    // Approximate SDF (exact ellipsoid SDF has no closed form).
    float minr = std::min({radii.x, radii.y, radii.z});
    return (k - 1.0f) * minr;
}

} // namespace

float
Primitive::sdf(const Vec3 &pos) const
{
    Vec3 p = pos - center;
    switch (shape) {
      case Shape::Sphere:
        return sdSphere(p, params.x);
      case Shape::Box:
        return sdBox(p, params);
      case Shape::Torus:
        return sdTorus(p, params.x, params.y);
      case Shape::CylinderY:
        return sdCylinderY(p, params.x, params.y);
      case Shape::Ellipsoid:
        return sdEllipsoid(p, params);
    }
    return 1.0f;
}

Vec3
Primitive::baseColor(const Vec3 &pos) const
{
    switch (pattern) {
      case Pattern::Solid:
        return color_a;
      case Pattern::Checker: {
        int cx = static_cast<int>(std::floor(pos.x * pattern_scale));
        int cy = static_cast<int>(std::floor(pos.y * pattern_scale));
        int cz = static_cast<int>(std::floor(pos.z * pattern_scale));
        return ((cx + cy + cz) & 1) ? color_b : color_a;
      }
      case Pattern::GradientY:
        return lerp(color_a, color_b, std::clamp(pos.y, 0.0f, 1.0f));
      case Pattern::StripesX: {
        float s = 0.5f + 0.5f * std::sin(pos.x * pattern_scale * 6.2831853f);
        return lerp(color_a, color_b, s);
      }
    }
    return color_a;
}

AnalyticScene::AnalyticScene(SceneInfo info, std::vector<Primitive> prims)
    : info_(std::move(info)), prims_(std::move(prims))
{
    ASDR_ASSERT(!prims_.empty(), "scene needs at least one primitive");
}

SceneSample
AnalyticScene::sample(const Vec3 &pos, const Vec3 &dir) const
{
    float sigma = 0.0f;
    Vec3 color_acc(0.0f);
    float weight_acc = 0.0f;
    for (const auto &prim : prims_) {
        float d = prim.sdf(pos);
        // Logistic falloff through the surface: smooth density the hash
        // grid + MLP can fit well while keeping crisp silhouettes.
        float occ = 1.0f / (1.0f + std::exp(d / prim.softness));
        float s = prim.density_amp * occ;
        if (s < 1e-4f)
            continue;
        sigma += s;
        // Mild view dependence so the color network is exercised; kept
        // small so the paper's color-wise locality (Fig. 8) holds.
        float vd = 0.85f + 0.15f * dot(dir, prim.shade_dir);
        color_acc += prim.baseColor(pos) * (s * vd);
        weight_acc += s;
    }
    SceneSample out;
    out.sigma = std::min(sigma, 200.0f);
    out.color = weight_acc > 0.0f ? clamp01(color_acc / weight_acc)
                                  : Vec3(0.0f);
    return out;
}

float
AnalyticScene::density(const Vec3 &pos) const
{
    float sigma = 0.0f;
    for (const auto &prim : prims_) {
        float d = prim.sdf(pos);
        sigma += prim.density_amp / (1.0f + std::exp(d / prim.softness));
    }
    return std::min(sigma, 200.0f);
}

double
AnalyticScene::emptyFraction(float thresh, int samples) const
{
    Rng rng(0xBADC0FFEull, 7);
    int empty = 0;
    for (int i = 0; i < samples; ++i)
        if (density(rng.nextVec3()) < thresh)
            ++empty;
    return double(empty) / double(samples);
}

} // namespace asdr::scene
