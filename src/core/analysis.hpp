/**
 * @file
 * Workload analysis tools behind the paper's motivation figures:
 *  - Fig. 4: address trace of consecutive sample points (hash locality)
 *  - Fig. 8: cosine-similarity distribution of adjacent point colors
 *  - Fig. 15: inter-ray / intra-ray voxel repetition rates per level
 */

#ifndef ASDR_CORE_ANALYSIS_HPP
#define ASDR_CORE_ANALYSIS_HPP

#include <cstdint>
#include <vector>

#include <utility>

#include "nerf/camera.hpp"
#include "nerf/field.hpp"
#include "util/stats.hpp"

namespace asdr::nerf {
class InstantNgpField;
}

namespace asdr::core {

/** One (sample point, flat table address) record of the Fig. 4 trace. */
struct AddressRecord
{
    int point = 0;       ///< sample-point ordinal in rendering order
    uint64_t address = 0; ///< flat address over all stacked tables
};

struct AddressTraceResult
{
    std::vector<AddressRecord> records;
    double mean_jump = 0.0;   ///< mean |addr delta| between consecutive accesses
    double median_jump = 0.0;
    uint64_t address_space = 0;
};

/**
 * Record the table addresses of the first `max_points` consecutive
 * sample points of a render (one address per vertex lookup). Mirrors
 * the paper's Fig. 4 (1,500 points).
 */
AddressTraceResult sampleAddressTrace(const nerf::RadianceField &field,
                                      const nerf::Camera &camera,
                                      int samples_per_ray, int max_points);

/**
 * Cosine-similarity distribution between RGB colors of adjacent sample
 * points along rays (paper Fig. 8). Pairs where both points are in
 * fully empty space are skipped (their colors never reach the output).
 * @param hist receives similarities; create over [0, 1]
 * @return fraction of pairs with similarity >= 0.99
 */
double colorSimilarityDistribution(const nerf::RadianceField &field,
                                   const nerf::Camera &camera,
                                   int samples_per_ray, Histogram &hist,
                                   int max_rays = 4096);

/** Per-level locality profile (paper Fig. 15). */
struct RepetitionProfile
{
    /** (a) fraction of a ray's points whose voxel is also visited by the
     *  neighboring ray, per level. */
    std::vector<double> inter_ray;
    /** (b) largest number of one ray's points falling into a single
     *  voxel, per level (averaged over rays). */
    std::vector<double> intra_ray_max_points;
};

RepetitionProfile profileRepetition(const nerf::RadianceField &field,
                                    const nerf::Camera &camera,
                                    int samples_per_ray,
                                    int max_ray_pairs = 256);

/** Host-measured data reuse of the batched hash-grid encode (the
 *  software counterpart of Fig. 15's repetition statistics). */
struct EncodeReuseReport
{
    /** Per level: average lookups per distinct table entry per batch. */
    std::vector<double> reuse_factor;
    /** Per level: fraction of lookups hitting the previous point's
     *  same-corner entry (what coherent ordering buys). */
    std::vector<double> coherent_fraction;
    uint64_t total_lookups = 0;
    uint64_t total_unique = 0;
};

/**
 * Pixel traversal of a w x h frame: row-major, or tile-Z-curve order
 * with tile edge `tile` (built on the same forEachMorton2D traversal
 * the renderer's Phase II tile loop uses). Shared by the reuse
 * analysis and the encode benches.
 */
std::vector<std::pair<int, int>> frameRayOrder(int width, int height,
                                               bool morton, int tile = 8);

/**
 * Uniform sample positions along `ray` through the unit cube (the
 * renderer's marching formula). Empty when the ray misses.
 */
std::vector<Vec3> rayPositions(const nerf::Ray &ray, int n, bool &hit);

/**
 * Feed the first `max_rays` rays' sample positions through
 * HashGrid::encodeBatch with reuse counters attached, batching `batch`
 * points at a time. `morton_order` walks the frame's rays in
 * tile-Z-curve order (tile edge `tile`) instead of row-major, so the
 * two orderings' measured reuse can be compared. Samples stay ray-major
 * within a ray -- an upper bound on the renderer's reuse per ray, not a
 * replay of its depth-major tile batches (bench_throughput's
 * `render_reuse` rows measure those through the field's stats hook).
 */
EncodeReuseReport measureEncodeReuse(const nerf::InstantNgpField &field,
                                     const nerf::Camera &camera,
                                     int samples_per_ray, int max_rays,
                                     bool morton_order, int batch = 4096,
                                     int tile = 8);

} // namespace asdr::core

#endif // ASDR_CORE_ANALYSIS_HPP
