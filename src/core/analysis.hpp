/**
 * @file
 * Workload analysis tools behind the paper's motivation figures:
 *  - Fig. 4: address trace of consecutive sample points (hash locality)
 *  - Fig. 8: cosine-similarity distribution of adjacent point colors
 *  - Fig. 15: inter-ray / intra-ray voxel repetition rates per level
 */

#ifndef ASDR_CORE_ANALYSIS_HPP
#define ASDR_CORE_ANALYSIS_HPP

#include <cstdint>
#include <vector>

#include "nerf/camera.hpp"
#include "nerf/field.hpp"
#include "util/stats.hpp"

namespace asdr::core {

/** One (sample point, flat table address) record of the Fig. 4 trace. */
struct AddressRecord
{
    int point = 0;       ///< sample-point ordinal in rendering order
    uint64_t address = 0; ///< flat address over all stacked tables
};

struct AddressTraceResult
{
    std::vector<AddressRecord> records;
    double mean_jump = 0.0;   ///< mean |addr delta| between consecutive accesses
    double median_jump = 0.0;
    uint64_t address_space = 0;
};

/**
 * Record the table addresses of the first `max_points` consecutive
 * sample points of a render (one address per vertex lookup). Mirrors
 * the paper's Fig. 4 (1,500 points).
 */
AddressTraceResult sampleAddressTrace(const nerf::RadianceField &field,
                                      const nerf::Camera &camera,
                                      int samples_per_ray, int max_points);

/**
 * Cosine-similarity distribution between RGB colors of adjacent sample
 * points along rays (paper Fig. 8). Pairs where both points are in
 * fully empty space are skipped (their colors never reach the output).
 * @param hist receives similarities; create over [0, 1]
 * @return fraction of pairs with similarity >= 0.99
 */
double colorSimilarityDistribution(const nerf::RadianceField &field,
                                   const nerf::Camera &camera,
                                   int samples_per_ray, Histogram &hist,
                                   int max_rays = 4096);

/** Per-level locality profile (paper Fig. 15). */
struct RepetitionProfile
{
    /** (a) fraction of a ray's points whose voxel is also visited by the
     *  neighboring ray, per level. */
    std::vector<double> inter_ray;
    /** (b) largest number of one ray's points falling into a single
     *  voxel, per level (averaged over rays). */
    std::vector<double> intra_ray_max_points;
};

RepetitionProfile profileRepetition(const nerf::RadianceField &field,
                                    const nerf::Camera &camera,
                                    int samples_per_ray,
                                    int max_ray_pairs = 256);

} // namespace asdr::core

#endif // ASDR_CORE_ANALYSIS_HPP
