#include "core/color_approximator.hpp"

#include "util/logging.hpp"

namespace asdr::core {

void
ColorApproximator::anchorIndices(int count, int group, std::vector<int> &out)
{
    out.clear();
    if (count <= 0)
        return;
    if (group <= 1) {
        for (int i = 0; i < count; ++i)
            out.push_back(i);
        return;
    }
    for (int i = 0; i < count; i += group)
        out.push_back(i);
    if (out.back() != count - 1)
        out.push_back(count - 1);
}

int
ColorApproximator::interpolate(Vec3 *colors, const std::vector<int> &anchors,
                               int count)
{
    if (anchors.empty() || count <= 0)
        return 0;
    ASDR_ASSERT(anchors.front() == 0 && anchors.back() == count - 1,
                "anchors must bracket the ray");
    int filled = 0;
    for (size_t a = 0; a + 1 < anchors.size(); ++a) {
        int lo = anchors[a];
        int hi = anchors[a + 1];
        for (int i = lo + 1; i < hi; ++i) {
            float t = float(i - lo) / float(hi - lo);
            colors[i] = lerp(colors[lo], colors[hi], t);
            ++filled;
        }
    }
    return filled;
}

} // namespace asdr::core
