#include "core/adaptive_sampler.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace asdr::core {

AdaptiveSampler::AdaptiveSampler(const RenderConfig &cfg) : cfg_(cfg)
{
    ASDR_ASSERT(cfg.probe_stride >= 1, "probe stride must be >= 1");
    ASDR_ASSERT(cfg.subset_strides.size() <= 31, "too many subset strides");
    for (int s : cfg.subset_strides)
        ASDR_ASSERT(s >= 2, "subset strides must be >= 2");
}

float
AdaptiveSampler::renderingDifficulty(const Vec3 &full_color,
                                     const Vec3 &subset_color)
{
    return maxAbsDiff(full_color, subset_color);
}

int
AdaptiveSampler::selectCount(const float *sigma, const Vec3 *color, int ns,
                             float dt) const
{
    // The full render and every candidate subset composite in a single
    // pass over the probe ray's already-batched sigma/color buffers
    // (results bit-identical to one composite() call per candidate).
    int strides[32];
    int count = 0;
    strides[count++] = 1;
    for (int stride : cfg_.subset_strides)
        if (stride < ns)
            strides[count++] = stride;
    nerf::CompositeResult res[32];
    nerf::compositeMulti(sigma, color, ns, dt, strides, count, res);

    // Strides are tried largest-first (fewest points first); the first
    // candidate within the threshold wins, giving the smallest budget.
    for (int k = 1; k < count; ++k) {
        float rd = renderingDifficulty(res[0].color, res[k].color);
        if (rd <= cfg_.delta)
            return std::max(cfg_.min_samples,
                            (ns + strides[k] - 1) / strides[k]);
    }
    return ns;
}

void
AdaptiveSampler::probeGridDims(int width, int height, int stride, int &gw,
                               int &gh)
{
    gw = (width + stride - 1) / stride;
    gh = (height + stride - 1) / stride;
}

std::vector<int>
AdaptiveSampler::interpolateCounts(const std::vector<int> &probe_counts,
                                   int gw, int gh, int width,
                                   int height) const
{
    ASDR_ASSERT(probe_counts.size() == size_t(gw) * size_t(gh),
                "probe grid size mismatch");
    std::vector<int> counts(size_t(width) * size_t(height));
    const int d = cfg_.probe_stride;
    auto probe = [&](int gx, int gy) {
        gx = std::clamp(gx, 0, gw - 1);
        gy = std::clamp(gy, 0, gh - 1);
        return float(probe_counts[size_t(gy) * gw + gx]);
    };
    for (int y = 0; y < height; ++y) {
        float gyf = float(y) / float(d);
        int gy0 = int(gyf);
        float fy = gyf - float(gy0);
        for (int x = 0; x < width; ++x) {
            float gxf = float(x) / float(d);
            int gx0 = int(gxf);
            float fx = gxf - float(gx0);
            float top = lerp(probe(gx0, gy0), probe(gx0 + 1, gy0), fx);
            float bot = lerp(probe(gx0, gy0 + 1), probe(gx0 + 1, gy0 + 1), fx);
            int c = int(std::lround(lerp(top, bot, fy)));
            counts[size_t(y) * width + x] =
                std::clamp(c, cfg_.min_samples, cfg_.samples_per_ray);
        }
    }
    return counts;
}

} // namespace asdr::core
