/**
 * @file
 * Adaptive sampling with rendering-difficulty awareness (paper §4.2).
 *
 * Phase I probes every d-th pixel: the probe ray is rendered with the
 * full ns points, then re-composited on strided subsets (ns_i = ns /
 * stride_i, reusing the already-predicted points). The rendering
 * difficulty of candidate i is Eq. (3):
 *     rd_i = max(|r_ns - r_nsi|, |g_ns - g_nsi|, |b_ns - b_nsi|)
 * and the pixel's budget becomes the smallest ns_i with rd_i <= delta.
 * Pixels that were not probed receive a budget by bilinear
 * interpolation of the four surrounding probe budgets (Fig. 6a).
 */

#ifndef ASDR_CORE_ADAPTIVE_SAMPLER_HPP
#define ASDR_CORE_ADAPTIVE_SAMPLER_HPP

#include <algorithm>
#include <vector>

#include "core/render_config.hpp"
#include "nerf/volume_render.hpp"
#include "util/vec.hpp"

namespace asdr::core {

class AdaptiveSampler
{
  public:
    explicit AdaptiveSampler(const RenderConfig &cfg);

    /** Eq. (3): the difficulty of a candidate against the full render. */
    static float renderingDifficulty(const Vec3 &full_color,
                                     const Vec3 &subset_color);

    /**
     * Pick the per-pixel budget from a fully-predicted probe ray.
     * @param sigma, color the ns predicted points (spacing dt)
     * @return the chosen number of samples (ns when no candidate passes)
     */
    int selectCount(const float *sigma, const Vec3 *color, int ns,
                    float dt) const;

    /** Probe-grid dimensions for a frame. */
    static void probeGridDims(int width, int height, int stride, int &gw,
                              int &gh);

    /**
     * Pixel probed by cell (gx, gy); every cell maps to a unique pixel
     * (floor((h-1)/d)*d <= h-1). The ONE cell-to-pixel mapping shared
     * by Phase I probing, the probe-cache splat, and the cache
     * capture, which must agree exactly for probe reuse to be
     * bit-identical.
     */
    static void
    probePixel(int gx, int gy, int stride, int width, int height, int &px,
               int &py)
    {
        px = std::min(gx * stride, width - 1);
        py = std::min(gy * stride, height - 1);
    }

    /**
     * Bilinearly interpolate per-pixel budgets from the probe grid
     * (gw x gh budgets at stride `cfg.probe_stride`), clamped to
     * [min_samples, samples_per_ray].
     */
    std::vector<int> interpolateCounts(const std::vector<int> &probe_counts,
                                       int gw, int gh, int width,
                                       int height) const;

  private:
    RenderConfig cfg_;
};

} // namespace asdr::core

#endif // ASDR_CORE_ADAPTIVE_SAMPLER_HPP
