/**
 * @file
 * Get-or-train access to fitted fields. Fitting a scene takes seconds;
 * the cache keeps fields in-process (shared_ptr) and on disk
 * (nerf/serialize), so the 20+ benchmark binaries share one training
 * run per scene.
 *
 * Naming note: this is a cache of FIELDS (whole trained models, keyed
 * by scene name + preset). The similarly-named core/sample_cache is a
 * cache of field OUTPUTS (per-sample density/features, keyed by
 * quantized position) that sits under a renderer at serving time. The
 * two never interact: this one decides which model you get, that one
 * memoizes what the model computes.
 */

#ifndef ASDR_CORE_FIELD_CACHE_HPP
#define ASDR_CORE_FIELD_CACHE_HPP

#include <memory>
#include <string>

#include "core/presets.hpp"
#include "nerf/ngp_field.hpp"
#include "nerf/tensorf.hpp"
#include "scene/analytic_scene.hpp"

namespace asdr::core {

/**
 * A fitted Instant-NGP field for `scene_name` under `preset`: loaded
 * from the disk cache when present, trained (and cached) otherwise.
 */
std::shared_ptr<nerf::InstantNgpField>
fittedField(const std::string &scene_name, const ExperimentPreset &preset);

/** Fitted TensoRF field (in-process cache only). */
std::shared_ptr<nerf::TensorfField>
fittedTensorf(const std::string &scene_name, const ExperimentPreset &preset);

} // namespace asdr::core

#endif // ASDR_CORE_FIELD_CACHE_HPP
