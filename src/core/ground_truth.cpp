#include "core/ground_truth.hpp"

#include "nerf/volume_render.hpp"

namespace asdr::core {

Image
renderGroundTruth(const scene::AnalyticScene &scene,
                  const nerf::Camera &camera, int samples)
{
    Image img(camera.width(), camera.height());
    std::vector<float> sigma(static_cast<size_t>(samples));
    std::vector<Vec3> color(static_cast<size_t>(samples));
    for (int y = 0; y < camera.height(); ++y) {
        for (int x = 0; x < camera.width(); ++x) {
            nerf::Ray ray = camera.ray(float(x) + 0.5f, float(y) + 0.5f);
            float t0, t1;
            if (!nerf::intersectUnitCube(ray, t0, t1)) {
                img.at(x, y) = Vec3(0.0f);
                continue;
            }
            float dt = (t1 - t0) / float(samples);
            for (int i = 0; i < samples; ++i) {
                Vec3 pos =
                    ray.origin + ray.dir * (t0 + (float(i) + 0.5f) * dt);
                scene::SceneSample s = scene.sample(pos, ray.dir);
                sigma[size_t(i)] = s.sigma;
                color[size_t(i)] = s.color;
            }
            img.at(x, y) =
                nerf::composite(sigma.data(), color.data(), samples, dt)
                    .color;
        }
    }
    return img;
}

} // namespace asdr::core
