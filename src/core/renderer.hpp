/**
 * @file
 * The two-phase ASDR renderer (paper §5.5 dataflow, in software):
 *
 * Phase I  (when adaptive sampling is on): probe every d-th pixel with
 *          the full ns samples, evaluate the Eq. (3) rendering
 *          difficulty on strided subsets, and choose per-pixel budgets;
 *          budgets for unprobed pixels come from bilinear interpolation.
 * Phase II render every remaining pixel with its budget. Per ray the
 *          pipeline is density-first: (1) density network for all points
 *          with optional early termination, (2) color network at group
 *          anchors only (when the approximation is on), (3) linear
 *          interpolation of missing colors, (4) Eq. (1) compositing --
 *          exactly the hardware's engine ordering, so software counts
 *          and simulated cycles describe the same work.
 *
 * Host execution is batch-at-a-time and tile-parallel: sample positions
 * are generated up front and evaluated through the field's batch API in
 * eval_batch-sized chunks (early termination stays exact), and both
 * phases are split into row jobs over a thread pool with per-job
 * workspaces, merged in row order. Frames are bit-identical for every
 * thread count and batch size; an attached trace sink forces the serial
 * scalar path so the event stream keeps the seed ordering.
 */

#ifndef ASDR_CORE_RENDERER_HPP
#define ASDR_CORE_RENDERER_HPP

#include <chrono>
#include <memory>
#include <mutex>
#include <vector>

#include "core/adaptive_sampler.hpp"
#include "core/render_config.hpp"
#include "core/trace.hpp"
#include "image/image.hpp"
#include "nerf/camera.hpp"
#include "nerf/field.hpp"

namespace asdr::engine {
class FrameEngine;
}

namespace asdr::core {

class SampleCache;
class CachedField;

/** Everything a render pass reports besides the image itself. */
struct RenderStats
{
    WorkloadProfile profile;
    /**
     * Per-pixel *assigned* sample budgets (the Fig. 7 heatmap source):
     * the adaptive budget when adaptive sampling is on, samples_per_ray
     * otherwise. Consistent across modes, unlike the actual-points map
     * below which reflects early termination and cube misses.
     */
    std::vector<float> sample_count_map;
    /** Per-pixel points actually marched (post early termination; 0 for
     *  rays that miss the volume). */
    std::vector<float> actual_points_map;
    /** Mean of sample_count_map (the paper's "average points/pixel"). */
    double avg_points_per_pixel = 0.0;
    /** Mean of actual_points_map. */
    double avg_actual_points_per_pixel = 0.0;
    /** Host wall-clock of the render (used by the Fig. 24 experiment). */
    double wall_seconds = 0.0;
};

/**
 * Static shape of one frame's stage graph, derivable from the config
 * and resolution alone (before any rendering): how many Phase I probe
 * rows and Phase II jobs the frame decomposes into. The engine sizes
 * its task graph from this without touching the field.
 */
struct FrameShape
{
    int gw = 0, gh = 0;           ///< probe grid (0x0 when not adaptive)
    int tiles_x = 0, tiles_y = 0; ///< Morton tile grid
    int jobs = 0;                 ///< Phase II job count (tiles or rows)
    bool morton = false;          ///< tile-Z-curve Phase II ordering
    bool adaptive = false;        ///< Phase I runs this frame
};

/**
 * All per-frame state of one render pass, threaded through the stage
 * API below. One FrameState corresponds to one in-flight frame of the
 * streaming engine; the synchronous render() facade uses exactly the
 * same stages, so both paths are bit-identical by construction.
 */
struct FrameState
{
    explicit FrameState(const nerf::Camera &cam) : camera(cam) {}

    nerf::Camera camera;
    FrameShape shape;
    Image img;
    std::vector<float> budget_map;
    std::vector<float> actual_map;
    std::vector<char> probed;
    std::vector<int> probe_counts; ///< per probe cell, gw x gh
    std::vector<int> budgets;      ///< per pixel, after planBudgets
    /** Per-job profiles, merged in index order at finalize. */
    std::vector<WorkloadProfile> probe_profiles;
    std::vector<WorkloadProfile> job_profiles;

    /**
     * Injected probe plan (RenderSession probe reuse): when
     * `probes_reused` is set, Phase I is skipped entirely and
     * planBudgets() splats these cached per-cell results instead --
     * probe-pixel colors into the image and the counts into the
     * interpolation. Bit-identical to a fresh render when the camera
     * is unchanged; an approximation across small camera deltas.
     */
    bool probes_reused = false;
    std::vector<int> reused_counts;
    std::vector<Vec3> reused_colors;
    std::vector<float> reused_actual;

    /**
     * Traced renders (renderTraced) force row-major Phase II jobs and
     * attach the sink; both must stay unset for engine frames (stages
     * would race on the sink's ordered event stream).
     */
    bool force_row_order = false;
    TraceSink *sink = nullptr;

    std::chrono::steady_clock::time_point start;
};

class AsdrRenderer
{
  public:
    AsdrRenderer(const nerf::RadianceField &field, const RenderConfig &cfg);
    ~AsdrRenderer();

    const RenderConfig &config() const { return cfg_; }

    /** The renderer's private sample cache, when cfg.sample_cache
     *  resolved on (null otherwise, including when the field arrived
     *  already wrapped in a shared CachedField). */
    const SampleCache *sampleCache() const { return sample_cache_.get(); }

    /** The field frames actually evaluate through: the cache overlay
     *  when one was built here, else the constructor's field. */
    const nerf::RadianceField &renderField() const { return field_; }

    /**
     * Render a frame. `stats` and `sink` may be null; attaching a sink
     * streams the full lookup/execution trace through it.
     *
     * This is a thin synchronous facade over the streaming frame
     * engine: the first non-traced render lazily starts a per-renderer
     * engine::FrameEngine (one persistent worker pool sized by
     * cfg.num_threads), and every subsequent render reuses it -- no
     * per-frame thread construction. Traced renders (`sink` attached)
     * run the serial in-thread path so the event stream keeps its
     * exact ordering.
     */
    Image render(const nerf::Camera &camera, RenderStats *stats = nullptr,
                 TraceSink *sink = nullptr) const;

    // ------------------------------------------------------------------
    // Frame-stage API (the engine's view of a render): a bit-exact
    // decomposition of render() into graph nodes
    //
    //   beginFrame -> probeRow* -> planBudgets -> phase2Job* -> finalize
    //
    // Stages of one frame must respect that order (the engine's
    // FrameGraph encodes it as dependencies); stages of *different*
    // frames may interleave freely, which is what multi-frame
    // pipelining exploits. probeRow/phase2Job calls with distinct
    // indices are independent and may run concurrently.
    // ------------------------------------------------------------------

    /** Stage-graph shape for a frame at `w` x `h` under this config. */
    FrameShape frameShape(int w, int h) const;

    /** Ray/buffer setup: allocates the image and per-pixel maps. */
    void beginFrame(FrameState &fs) const;

    /** Phase I: probe row `gy` of the probe grid (full-budget rays +
     *  Eq. (3) difficulty -> per-cell budgets). */
    void probeRow(FrameState &fs, int gy) const;

    /** Sample-count planning: bilinear budget interpolation (or the
     *  cached-probe splat when `fs.probes_reused`). */
    void planBudgets(FrameState &fs) const;

    /** Phase II job `j`: one Morton tile (or one image row when tile
     *  ordering is off). */
    void phase2Job(FrameState &fs, int j) const;

    /** Merge per-job profiles (index order) and fill `stats`. */
    void finalizeFrame(FrameState &fs, RenderStats *stats) const;

    /** Reusable per-ray scratch buffers. */
    struct RayWorkspace
    {
        std::vector<Vec3> positions;
        std::vector<float> sigma;
        std::vector<nerf::DensityOutput> density;
        std::vector<Vec3> colors;
        std::vector<int> anchors;
        // Gathered anchor rows for the batched color pass.
        std::vector<Vec3> anchor_pos;
        std::vector<nerf::DensityOutput> anchor_den;
        std::vector<Vec3> anchor_col;
    };

    /** Result of marching a single ray. */
    struct RayResult
    {
        Vec3 color;
        int points_used = 0; ///< points after early termination
        bool hit_volume = false;
    };

    /**
     * March one ray with `budget` samples. Exposed for unit tests and
     * the analysis tools; `probe` disables early termination (probe
     * rays need every point for the subset comparisons) and retains
     * sigma/colors in `ws` for the difficulty evaluation.
     */
    RayResult renderRay(const nerf::Ray &ray, int budget, bool probe,
                        RayWorkspace &ws, WorkloadProfile &profile,
                        TraceSink *sink) const;

    /**
     * Per-tile scratch of the Morton-ordered Phase II loop: SoA ray
     * state plus flat ray-major sample buffers (per-ray segments at
     * `offset[r]`), reused across tiles per thread.
     */
    struct TileWorkspace
    {
        // Per-ray state, in Z-curve traversal order.
        std::vector<nerf::Ray> rays;
        std::vector<int> px, py;
        std::vector<int> budget;   ///< assigned samples (the budget map)
        std::vector<int> n;        ///< marched samples (0 = cube miss)
        std::vector<float> t0, dt;
        std::vector<int> offset;   ///< segment start in the flat buffers
        std::vector<int> cut;      ///< early-termination index (== n if none)
        std::vector<int> scanned;  ///< sigma/ET progress along the ray
        std::vector<float> transmittance;
        std::vector<char> alive;
        // Flat per-ray sample segments.
        std::vector<Vec3> positions;
        std::vector<float> sigma;
        std::vector<nerf::DensityOutput> density;
        std::vector<Vec3> colors;
        // Depth-major evaluation chunk (gather order + scatter targets).
        std::vector<Vec3> batch_pos;
        std::vector<int> batch_slot;
        std::vector<nerf::DensityOutput> batch_den;
        RayWorkspace shade; ///< anchor scratch for the color pass
    };

  private:
    /**
     * The color + approximation + compositing tail of a marched ray
     * (shared by renderRay and renderTile): color network at anchors,
     * gap interpolation, Eq. (1) compositing. `scalar` selects the
     * per-point color path (trace sinks / eval_batch <= 1).
     */
    Vec3 shadePoints(const nerf::Ray &ray, const Vec3 *positions,
                     const nerf::DensityOutput *density,
                     const float *sigma, Vec3 *colors, int cut, float dt,
                     bool scalar, RayWorkspace &ws,
                     WorkloadProfile &profile, TraceSink *sink) const;

    /**
     * March one tile of Phase II rays in Z-curve order, depth-major:
     * each density batch holds the tile's surviving rays at a band of
     * consecutive depths, maximizing hash-table cache-line sharing.
     * Early termination cuts each ray at exactly the index the per-ray
     * path would, and results are scattered to pixel order, so the
     * frame is bit-identical to renderRay over the same pixels.
     */
    void renderTile(const nerf::Camera &camera, int x0, int y0, int tw,
                    int th, const int *budgets, const char *probed,
                    TileWorkspace &tws, Image &img, float *budget_map,
                    float *actual_map, WorkloadProfile &profile) const;

    /** Serial in-thread render used when a trace sink is attached. */
    Image renderTraced(const nerf::Camera &camera, RenderStats *stats,
                       TraceSink &sink) const;

    /**
     * Optional sample-cache overlay (core/sample_cache), built when
     * cfg.sample_cache resolves on and the field is not already a
     * CachedField (the serving stack wraps at the SceneRegistry so all
     * sessions share one per-scene cache; a bare renderer built here
     * gets a private one). Declared before field_ so the reference can
     * bind to the overlay in the constructor initializer list.
     */
    std::shared_ptr<SampleCache> sample_cache_;
    std::unique_ptr<CachedField> cache_overlay_;
    const nerf::RadianceField &field_;
    RenderConfig cfg_;
    AdaptiveSampler sampler_;
    int lookups_per_point_; ///< hoisted from costs() (hot path)

    /** Lazily-started engine behind the synchronous facade (one
     *  persistent pool per renderer, shared by all its frames). */
    mutable std::unique_ptr<engine::FrameEngine> engine_;
    mutable std::once_flag engine_once_;
};

} // namespace asdr::core

#endif // ASDR_CORE_RENDERER_HPP
