/**
 * @file
 * The two-phase ASDR renderer (paper §5.5 dataflow, in software):
 *
 * Phase I  (when adaptive sampling is on): probe every d-th pixel with
 *          the full ns samples, evaluate the Eq. (3) rendering
 *          difficulty on strided subsets, and choose per-pixel budgets;
 *          budgets for unprobed pixels come from bilinear interpolation.
 * Phase II render every remaining pixel with its budget. Per ray the
 *          pipeline is density-first: (1) density network for all points
 *          with optional early termination, (2) color network at group
 *          anchors only (when the approximation is on), (3) linear
 *          interpolation of missing colors, (4) Eq. (1) compositing --
 *          exactly the hardware's engine ordering, so software counts
 *          and simulated cycles describe the same work.
 *
 * Host execution is batch-at-a-time and tile-parallel: sample positions
 * are generated up front and evaluated through the field's batch API in
 * eval_batch-sized chunks (early termination stays exact), and both
 * phases are split into row jobs over a thread pool with per-job
 * workspaces, merged in row order. Frames are bit-identical for every
 * thread count and batch size; an attached trace sink forces the serial
 * scalar path so the event stream keeps the seed ordering.
 */

#ifndef ASDR_CORE_RENDERER_HPP
#define ASDR_CORE_RENDERER_HPP

#include <vector>

#include "core/adaptive_sampler.hpp"
#include "core/render_config.hpp"
#include "core/trace.hpp"
#include "image/image.hpp"
#include "nerf/camera.hpp"
#include "nerf/field.hpp"

namespace asdr::core {

/** Everything a render pass reports besides the image itself. */
struct RenderStats
{
    WorkloadProfile profile;
    /**
     * Per-pixel *assigned* sample budgets (the Fig. 7 heatmap source):
     * the adaptive budget when adaptive sampling is on, samples_per_ray
     * otherwise. Consistent across modes, unlike the actual-points map
     * below which reflects early termination and cube misses.
     */
    std::vector<float> sample_count_map;
    /** Per-pixel points actually marched (post early termination; 0 for
     *  rays that miss the volume). */
    std::vector<float> actual_points_map;
    /** Mean of sample_count_map (the paper's "average points/pixel"). */
    double avg_points_per_pixel = 0.0;
    /** Mean of actual_points_map. */
    double avg_actual_points_per_pixel = 0.0;
    /** Host wall-clock of the render (used by the Fig. 24 experiment). */
    double wall_seconds = 0.0;
};

class AsdrRenderer
{
  public:
    AsdrRenderer(const nerf::RadianceField &field, const RenderConfig &cfg);

    const RenderConfig &config() const { return cfg_; }

    /**
     * Render a frame. `stats` and `sink` may be null; attaching a sink
     * streams the full lookup/execution trace through it.
     */
    Image render(const nerf::Camera &camera, RenderStats *stats = nullptr,
                 TraceSink *sink = nullptr) const;

    /** Reusable per-ray scratch buffers. */
    struct RayWorkspace
    {
        std::vector<Vec3> positions;
        std::vector<float> sigma;
        std::vector<nerf::DensityOutput> density;
        std::vector<Vec3> colors;
        std::vector<int> anchors;
        // Gathered anchor rows for the batched color pass.
        std::vector<Vec3> anchor_pos;
        std::vector<nerf::DensityOutput> anchor_den;
        std::vector<Vec3> anchor_col;
    };

    /** Result of marching a single ray. */
    struct RayResult
    {
        Vec3 color;
        int points_used = 0; ///< points after early termination
        bool hit_volume = false;
    };

    /**
     * March one ray with `budget` samples. Exposed for unit tests and
     * the analysis tools; `probe` disables early termination (probe
     * rays need every point for the subset comparisons) and retains
     * sigma/colors in `ws` for the difficulty evaluation.
     */
    RayResult renderRay(const nerf::Ray &ray, int budget, bool probe,
                        RayWorkspace &ws, WorkloadProfile &profile,
                        TraceSink *sink) const;

  private:
    const nerf::RadianceField &field_;
    RenderConfig cfg_;
    AdaptiveSampler sampler_;
    int lookups_per_point_; ///< hoisted from costs() (hot path)
};

} // namespace asdr::core

#endif // ASDR_CORE_RENDERER_HPP
