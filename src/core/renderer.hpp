/**
 * @file
 * The two-phase ASDR renderer (paper §5.5 dataflow, in software):
 *
 * Phase I  (when adaptive sampling is on): probe every d-th pixel with
 *          the full ns samples, evaluate the Eq. (3) rendering
 *          difficulty on strided subsets, and choose per-pixel budgets;
 *          budgets for unprobed pixels come from bilinear interpolation.
 * Phase II render every remaining pixel with its budget. Per ray the
 *          pipeline is density-first: (1) density network for all points
 *          with optional early termination, (2) color network at group
 *          anchors only (when the approximation is on), (3) linear
 *          interpolation of missing colors, (4) Eq. (1) compositing --
 *          exactly the hardware's engine ordering, so software counts
 *          and simulated cycles describe the same work.
 *
 * Host execution is batch-at-a-time and tile-parallel: sample positions
 * are generated up front and evaluated through the field's batch API in
 * eval_batch-sized chunks (early termination stays exact), and both
 * phases are split into row jobs over a thread pool with per-job
 * workspaces, merged in row order. Frames are bit-identical for every
 * thread count and batch size; an attached trace sink forces the serial
 * scalar path so the event stream keeps the seed ordering.
 */

#ifndef ASDR_CORE_RENDERER_HPP
#define ASDR_CORE_RENDERER_HPP

#include <vector>

#include "core/adaptive_sampler.hpp"
#include "core/render_config.hpp"
#include "core/trace.hpp"
#include "image/image.hpp"
#include "nerf/camera.hpp"
#include "nerf/field.hpp"

namespace asdr::core {

/** Everything a render pass reports besides the image itself. */
struct RenderStats
{
    WorkloadProfile profile;
    /**
     * Per-pixel *assigned* sample budgets (the Fig. 7 heatmap source):
     * the adaptive budget when adaptive sampling is on, samples_per_ray
     * otherwise. Consistent across modes, unlike the actual-points map
     * below which reflects early termination and cube misses.
     */
    std::vector<float> sample_count_map;
    /** Per-pixel points actually marched (post early termination; 0 for
     *  rays that miss the volume). */
    std::vector<float> actual_points_map;
    /** Mean of sample_count_map (the paper's "average points/pixel"). */
    double avg_points_per_pixel = 0.0;
    /** Mean of actual_points_map. */
    double avg_actual_points_per_pixel = 0.0;
    /** Host wall-clock of the render (used by the Fig. 24 experiment). */
    double wall_seconds = 0.0;
};

class AsdrRenderer
{
  public:
    AsdrRenderer(const nerf::RadianceField &field, const RenderConfig &cfg);

    const RenderConfig &config() const { return cfg_; }

    /**
     * Render a frame. `stats` and `sink` may be null; attaching a sink
     * streams the full lookup/execution trace through it.
     */
    Image render(const nerf::Camera &camera, RenderStats *stats = nullptr,
                 TraceSink *sink = nullptr) const;

    /** Reusable per-ray scratch buffers. */
    struct RayWorkspace
    {
        std::vector<Vec3> positions;
        std::vector<float> sigma;
        std::vector<nerf::DensityOutput> density;
        std::vector<Vec3> colors;
        std::vector<int> anchors;
        // Gathered anchor rows for the batched color pass.
        std::vector<Vec3> anchor_pos;
        std::vector<nerf::DensityOutput> anchor_den;
        std::vector<Vec3> anchor_col;
    };

    /** Result of marching a single ray. */
    struct RayResult
    {
        Vec3 color;
        int points_used = 0; ///< points after early termination
        bool hit_volume = false;
    };

    /**
     * March one ray with `budget` samples. Exposed for unit tests and
     * the analysis tools; `probe` disables early termination (probe
     * rays need every point for the subset comparisons) and retains
     * sigma/colors in `ws` for the difficulty evaluation.
     */
    RayResult renderRay(const nerf::Ray &ray, int budget, bool probe,
                        RayWorkspace &ws, WorkloadProfile &profile,
                        TraceSink *sink) const;

    /**
     * Per-tile scratch of the Morton-ordered Phase II loop: SoA ray
     * state plus flat ray-major sample buffers (per-ray segments at
     * `offset[r]`), reused across tiles per thread.
     */
    struct TileWorkspace
    {
        // Per-ray state, in Z-curve traversal order.
        std::vector<nerf::Ray> rays;
        std::vector<int> px, py;
        std::vector<int> budget;   ///< assigned samples (the budget map)
        std::vector<int> n;        ///< marched samples (0 = cube miss)
        std::vector<float> t0, dt;
        std::vector<int> offset;   ///< segment start in the flat buffers
        std::vector<int> cut;      ///< early-termination index (== n if none)
        std::vector<int> scanned;  ///< sigma/ET progress along the ray
        std::vector<float> transmittance;
        std::vector<char> alive;
        // Flat per-ray sample segments.
        std::vector<Vec3> positions;
        std::vector<float> sigma;
        std::vector<nerf::DensityOutput> density;
        std::vector<Vec3> colors;
        // Depth-major evaluation chunk (gather order + scatter targets).
        std::vector<Vec3> batch_pos;
        std::vector<int> batch_slot;
        std::vector<nerf::DensityOutput> batch_den;
        RayWorkspace shade; ///< anchor scratch for the color pass
    };

  private:
    /**
     * The color + approximation + compositing tail of a marched ray
     * (shared by renderRay and renderTile): color network at anchors,
     * gap interpolation, Eq. (1) compositing. `scalar` selects the
     * per-point color path (trace sinks / eval_batch <= 1).
     */
    Vec3 shadePoints(const nerf::Ray &ray, const Vec3 *positions,
                     const nerf::DensityOutput *density,
                     const float *sigma, Vec3 *colors, int cut, float dt,
                     bool scalar, RayWorkspace &ws,
                     WorkloadProfile &profile, TraceSink *sink) const;

    /**
     * March one tile of Phase II rays in Z-curve order, depth-major:
     * each density batch holds the tile's surviving rays at a band of
     * consecutive depths, maximizing hash-table cache-line sharing.
     * Early termination cuts each ray at exactly the index the per-ray
     * path would, and results are scattered to pixel order, so the
     * frame is bit-identical to renderRay over the same pixels.
     */
    void renderTile(const nerf::Camera &camera, int x0, int y0, int tw,
                    int th, const int *budgets, const char *probed,
                    TileWorkspace &tws, Image &img, float *budget_map,
                    float *actual_map, WorkloadProfile &profile) const;

    const nerf::RadianceField &field_;
    RenderConfig cfg_;
    AdaptiveSampler sampler_;
    int lookups_per_point_; ///< hoisted from costs() (hot path)
};

} // namespace asdr::core

#endif // ASDR_CORE_RENDERER_HPP
