/**
 * @file
 * Volume-rendering approximation via color/density decoupling (paper
 * §4.3). Points along a ray are split into groups of n; the color
 * network runs only on group anchors (the first point of each group plus
 * the final point), and the remaining colors are linearly interpolated
 * between anchors -- exploiting the color-wise locality of Fig. 8.
 * Density is always computed for every point.
 */

#ifndef ASDR_CORE_COLOR_APPROXIMATOR_HPP
#define ASDR_CORE_COLOR_APPROXIMATOR_HPP

#include <vector>

#include "util/vec.hpp"

namespace asdr::core {

class ColorApproximator
{
  public:
    /**
     * Indices that get a real color-network execution for a ray of
     * `count` points with group size `group`: 0, n, 2n, ... plus
     * count-1. group <= 1 selects every index (approximation off).
     */
    static void anchorIndices(int count, int group, std::vector<int> &out);

    /**
     * Fill non-anchor entries of `colors` (length `count`) by linear
     * interpolation between consecutive anchors, in place.
     * @return number of interpolated entries
     */
    static int interpolate(Vec3 *colors, const std::vector<int> &anchors,
                           int count);
};

} // namespace asdr::core

#endif // ASDR_CORE_COLOR_APPROXIMATOR_HPP
