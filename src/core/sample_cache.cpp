#include "core/sample_cache.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/rng.hpp"

namespace asdr::core {

namespace {

/** Linear probe window per shard (also the clock/second-chance scan
 *  width: the evictor only competes within the window it probes). */
constexpr int kProbeWindow = 8;

constexpr int kValueWords = 1 + nerf::kMaxGeoFeatures;

inline uint32_t
floatBits(float f)
{
    uint32_t u;
    std::memcpy(&u, &f, sizeof(u));
    return u;
}

inline float
bitsFloat(uint32_t u)
{
    float f;
    std::memcpy(&f, &u, sizeof(f));
    return f;
}

inline uint32_t
roundDownPow2(uint32_t v)
{
    uint32_t p = 1;
    while (p * 2 <= v)
        p *= 2;
    return p;
}

} // namespace

SampleCache::SampleCache(const SampleCacheParams &params)
{
    quant_step_ = params.quant_step > 0.0f ? params.quant_step : 0.0f;
    inv_step_ = quant_step_ > 0.0f ? 1.0f / quant_step_ : 0.0f;

    const uint32_t nshards =
        roundDownPow2(uint32_t(std::max(1, params.shards)));
    shard_mask_ = nshards - 1;

    // Budget -> slots: the slot array IS the cache's memory, so size it
    // from sizeof(Slot) directly and keep at least one probe window per
    // shard so lookup/insert never degenerate.
    const size_t budget =
        size_t(std::max(1, params.capacity_mb)) * size_t(1) << 20;
    size_t total_slots = std::max<size_t>(budget / sizeof(Slot),
                                          size_t(nshards) * kProbeWindow);
    uint32_t per_shard = roundDownPow2(
        uint32_t(std::min<size_t>(total_slots / nshards, 1u << 26)));
    per_shard = std::max<uint32_t>(per_shard, kProbeWindow);
    slot_mask_ = per_shard - 1;

    shards_ = std::vector<Shard>(nshards);
    for (Shard &sh : shards_)
        sh.slots = std::vector<Slot>(per_shard);
}

SampleCache::Key
SampleCache::makeKey(const Vec3 &pos) const
{
    Key k;
    if (exactMode()) {
        k.x = floatBits(pos.x);
        k.y = floatBits(pos.y);
        k.z = floatBits(pos.z);
    } else {
        k.x = uint32_t(int32_t(std::floor(pos.x * inv_step_)));
        k.y = uint32_t(int32_t(std::floor(pos.y * inv_step_)));
        k.z = uint32_t(int32_t(std::floor(pos.z * inv_step_)));
    }
    return k;
}

uint64_t
SampleCache::hashKey(const Key &k)
{
    // splitmix64 over the packed key: high bits pick the shard, low
    // bits the slot, so the two selections stay independent.
    uint64_t state = (uint64_t(k.x) << 32) ^ (uint64_t(k.y) << 16) ^
                     uint64_t(k.z);
    return splitmix64(state);
}

bool
SampleCache::lookupSlot(Shard &sh, uint64_t h, const Key &k,
                        uint32_t epoch, nerf::DensityOutput &out,
                        bool &stale) const
{
    const uint32_t base = uint32_t(h) & slot_mask_;
    for (int i = 0; i < kProbeWindow; ++i) {
        Slot &s = sh.slots[size_t((base + uint32_t(i)) & slot_mask_)];
        const uint32_t s1 = s.seq.load(std::memory_order_acquire);
        if (s1 == 0)
            break; // slots fill window-in-order: key cannot be further on
        if (s1 & 1u)
            continue; // writer mid-publish
        if (s.kx.load(std::memory_order_relaxed) != k.x ||
            s.ky.load(std::memory_order_relaxed) != k.y ||
            s.kz.load(std::memory_order_relaxed) != k.z)
            continue;
        const uint32_t slot_epoch = s.epoch.load(std::memory_order_relaxed);
        uint32_t bits[kValueWords];
        for (int w = 0; w < kValueWords; ++w)
            bits[w] = s.val[w].load(std::memory_order_relaxed);
        // Seqlock validation: if the sequence moved, any of the words
        // above may be torn -- treat as a miss and recompute.
        std::atomic_thread_fence(std::memory_order_acquire);
        if (s.seq.load(std::memory_order_relaxed) != s1)
            continue;
        if (slot_epoch != epoch) {
            // A pre-bump value: NEVER serve it. The slot stays until an
            // insert reclaims it.
            stale = true;
            continue;
        }
        s.ref.store(1u, std::memory_order_relaxed);
        out.sigma = bitsFloat(bits[0]);
        for (int f = 0; f < nerf::kMaxGeoFeatures; ++f)
            out.geo[size_t(f)] = bitsFloat(bits[1 + f]);
        return true;
    }
    return false;
}

bool
SampleCache::insertSlot(Shard &sh, uint64_t h, const Key &k,
                        uint32_t epoch, const nerf::DensityOutput &val,
                        bool &inserted)
{
    const uint32_t base = uint32_t(h) & slot_mask_;
    const uint32_t now = epoch_.load(std::memory_order_relaxed);
    int victim = -1;
    bool evicting = false;

    // Preferred victims, window-in-order: the key's own slot (refresh),
    // a never-used slot, or a stale-epoch leftover (dead weight after a
    // bumpEpoch -- reclaiming it is how invalidated entries drain).
    for (int i = 0; i < kProbeWindow && victim < 0; ++i) {
        Slot &s = sh.slots[size_t((base + uint32_t(i)) & slot_mask_)];
        const uint32_t s1 = s.seq.load(std::memory_order_acquire);
        if (s1 & 1u)
            continue;
        if (s1 == 0) {
            victim = i;
        } else if (s.kx.load(std::memory_order_relaxed) == k.x &&
                   s.ky.load(std::memory_order_relaxed) == k.y &&
                   s.kz.load(std::memory_order_relaxed) == k.z) {
            victim = i;
        } else if (s.epoch.load(std::memory_order_relaxed) != now) {
            victim = i;
        }
    }

    // Window full of live entries: clock/second-chance over the window.
    // Entries hit since the last scan get their reference bit cleared
    // and survive; the first unreferenced entry is replaced.
    if (victim < 0) {
        for (int i = 0; i < kProbeWindow && victim < 0; ++i) {
            Slot &s = sh.slots[size_t((base + uint32_t(i)) & slot_mask_)];
            if (s.ref.load(std::memory_order_relaxed) == 0)
                victim = i;
            else
                s.ref.store(0u, std::memory_order_relaxed);
        }
        if (victim < 0)
            victim = 0; // every ref bit was just cleared: classic clock
        evicting = true;
    }

    Slot &s = sh.slots[size_t((base + uint32_t(victim)) & slot_mask_)];
    uint32_t cur = s.seq.load(std::memory_order_relaxed);
    if (cur & 1u)
        return false; // another writer owns it; publishing is best-effort
    if (!s.seq.compare_exchange_strong(cur, cur + 1,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed))
        return false;
    s.kx.store(k.x, std::memory_order_relaxed);
    s.ky.store(k.y, std::memory_order_relaxed);
    s.kz.store(k.z, std::memory_order_relaxed);
    s.epoch.store(epoch, std::memory_order_relaxed);
    s.val[0].store(floatBits(val.sigma), std::memory_order_relaxed);
    for (int f = 0; f < nerf::kMaxGeoFeatures; ++f)
        s.val[1 + f].store(floatBits(val.geo[size_t(f)]),
                           std::memory_order_relaxed);
    s.ref.store(1u, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    s.seq.store(cur + 2, std::memory_order_release);
    inserted = true;
    return evicting && cur != 0;
}

int
SampleCache::probeBatch(const Vec3 *pos, int count, uint32_t epoch,
                        nerf::DensityOutput *out, int *miss_idx)
{
    uint64_t hits = 0, stales = 0;
    int misses = 0;
    for (int i = 0; i < count; ++i) {
        const Key k = makeKey(pos[i]);
        const uint64_t h = hashKey(k);
        bool stale = false;
        if (lookupSlot(shardOf(h), h, k, epoch, out[i], stale)) {
            ++hits;
        } else {
            miss_idx[misses++] = i;
            stales += stale ? 1 : 0;
        }
    }
    if (count > 0) {
        // One counter round-trip per batch, not per point: the stripe
        // of the first position absorbs the whole batch's deltas.
        Shard &sh = shardOf(hashKey(makeKey(pos[0])));
        if (hits)
            sh.hits.fetch_add(hits, std::memory_order_relaxed);
        if (misses)
            sh.misses.fetch_add(uint64_t(misses),
                                std::memory_order_relaxed);
        if (stales)
            sh.epoch_drops.fetch_add(stales, std::memory_order_relaxed);
    }
    return misses;
}

void
SampleCache::publishBatch(const Vec3 *pos, const nerf::DensityOutput *vals,
                          int count, uint32_t epoch)
{
    uint64_t inserts = 0, evictions = 0;
    for (int i = 0; i < count; ++i) {
        const Key k = makeKey(pos[i]);
        const uint64_t h = hashKey(k);
        bool inserted = false;
        if (insertSlot(shardOf(h), h, k, epoch, vals[i], inserted))
            ++evictions;
        inserts += inserted ? 1 : 0;
    }
    if (count > 0) {
        Shard &sh = shardOf(hashKey(makeKey(pos[0])));
        if (inserts)
            sh.inserts.fetch_add(inserts, std::memory_order_relaxed);
        if (evictions)
            sh.evictions.fetch_add(evictions, std::memory_order_relaxed);
    }
}

bool
SampleCache::probe(const Vec3 &pos, uint32_t epoch, nerf::DensityOutput &out)
{
    const Key k = makeKey(pos);
    const uint64_t h = hashKey(k);
    Shard &sh = shardOf(h);
    bool stale = false;
    if (lookupSlot(sh, h, k, epoch, out, stale)) {
        sh.hits.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    sh.misses.fetch_add(1, std::memory_order_relaxed);
    if (stale)
        sh.epoch_drops.fetch_add(1, std::memory_order_relaxed);
    return false;
}

void
SampleCache::publish(const Vec3 &pos, const nerf::DensityOutput &val,
                     uint32_t epoch)
{
    publishBatch(&pos, &val, 1, epoch);
}

void
SampleCache::bumpEpoch()
{
    epoch_.fetch_add(1, std::memory_order_acq_rel);
}

SampleCacheCounters
SampleCache::counters() const
{
    SampleCacheCounters c;
    for (const Shard &sh : shards_) {
        c.hits += sh.hits.load(std::memory_order_relaxed);
        c.misses += sh.misses.load(std::memory_order_relaxed);
        c.inserts += sh.inserts.load(std::memory_order_relaxed);
        c.evictions += sh.evictions.load(std::memory_order_relaxed);
        c.epoch_drops += sh.epoch_drops.load(std::memory_order_relaxed);
    }
    return c;
}

size_t
SampleCache::slotCount() const
{
    return shards_.size() * (size_t(slot_mask_) + 1);
}

size_t
SampleCache::memoryBytes() const
{
    return slotCount() * sizeof(Slot);
}

// ---------------------------------------------------------------------
// CachedField
// ---------------------------------------------------------------------

CachedField::CachedField(const nerf::RadianceField &inner,
                         std::shared_ptr<SampleCache> cache)
    : inner_(inner), cache_(std::move(cache))
{
}

nerf::DensityOutput
CachedField::density(const Vec3 &pos) const
{
    const uint32_t epoch = cache_->beginEpoch();
    nerf::DensityOutput out;
    if (cache_->probe(pos, epoch, out))
        return out;
    out = inner_.density(pos);
    cache_->publish(pos, out, epoch);
    return out;
}

Vec3
CachedField::color(const Vec3 &pos, const Vec3 &dir,
                   const nerf::DensityOutput &den) const
{
    return inner_.color(pos, dir, den);
}

void
CachedField::densityBatch(const Vec3 *pos, int count,
                          nerf::DensityOutput *out) const
{
    if (count <= 0)
        return;
    // Snapshot the epoch BEFORE evaluating anything: a field update
    // racing this batch invalidates our publishes along with the rest.
    const uint32_t epoch = cache_->beginEpoch();

    static thread_local std::vector<int> miss_idx;
    static thread_local std::vector<Vec3> miss_pos;
    static thread_local std::vector<nerf::DensityOutput> miss_out;
    miss_idx.resize(size_t(count));

    const int misses =
        cache_->probeBatch(pos, count, epoch, out, miss_idx.data());
    if (misses == 0)
        return;
    if (misses == count) {
        // Cold batch: evaluate in place, no gather/scatter copies.
        inner_.densityBatch(pos, count, out);
        cache_->publishBatch(pos, out, count, epoch);
        return;
    }

    // Compact the misses so the inner SIMD encode+MLP path runs one
    // dense batch, then scatter results back to their slots.
    miss_pos.resize(size_t(misses));
    miss_out.resize(size_t(misses));
    for (int m = 0; m < misses; ++m)
        miss_pos[size_t(m)] = pos[miss_idx[size_t(m)]];
    inner_.densityBatch(miss_pos.data(), misses, miss_out.data());
    for (int m = 0; m < misses; ++m)
        out[miss_idx[size_t(m)]] = miss_out[size_t(m)];
    cache_->publishBatch(miss_pos.data(), miss_out.data(), misses, epoch);
}

void
CachedField::colorBatch(const Vec3 *pos, const Vec3 &dir,
                        const nerf::DensityOutput *den, int count,
                        Vec3 *out) const
{
    inner_.colorBatch(pos, dir, den, count, out);
}

void
CachedField::traceLookups(const Vec3 &pos, nerf::LookupSink &sink) const
{
    inner_.traceLookups(pos, sink);
}

nerf::TableSchema
CachedField::tableSchema() const
{
    return inner_.tableSchema();
}

nerf::FieldCosts
CachedField::costs() const
{
    return inner_.costs();
}

std::string
CachedField::describe() const
{
    return inner_.describe() + " + sample-cache(" +
           (cache_->exactMode()
                ? std::string("exact")
                : "q=" + std::to_string(cache_->quantStep())) +
           ")";
}

} // namespace asdr::core
