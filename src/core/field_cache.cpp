#include "core/field_cache.hpp"

#include <map>

#include "nerf/serialize.hpp"
#include "nerf/trainer.hpp"
#include "scene/scene_library.hpp"
#include "util/logging.hpp"

namespace asdr::core {

std::shared_ptr<nerf::InstantNgpField>
fittedField(const std::string &scene_name, const ExperimentPreset &preset)
{
    static std::map<std::string, std::shared_ptr<nerf::InstantNgpField>>
        memo;
    std::string key = scene_name + "/" + preset.name;
    auto it = memo.find(key);
    if (it != memo.end())
        return it->second;

    auto field = std::make_shared<nerf::InstantNgpField>(preset.model,
                                                         0xF1E1D);
    std::string path = nerf::fieldCachePath(scene_name, preset.name);
    if (nerf::loadField(*field, path)) {
        inform("loaded fitted field for ", scene_name, " from ", path);
    } else {
        auto scene = scene::createScene(scene_name);
        inform("fitting field for ", scene_name, " (",
               preset.train.steps, " steps)...");
        nerf::TrainReport report =
            nerf::fitField(*field, *scene, preset.train);
        inform("fit ", scene_name, ": loss ", report.initial_loss, " -> ",
               report.final_loss);
        nerf::saveField(*field, path);
    }
    memo[key] = field;
    return field;
}

std::shared_ptr<nerf::TensorfField>
fittedTensorf(const std::string &scene_name, const ExperimentPreset &preset)
{
    static std::map<std::string, std::shared_ptr<nerf::TensorfField>> memo;
    std::string key = scene_name + "/" + preset.name;
    auto it = memo.find(key);
    if (it != memo.end())
        return it->second;

    nerf::TensorfConfig cfg;
    auto field = std::make_shared<nerf::TensorfField>(cfg, 0x7E50);
    auto scene = scene::createScene(scene_name);
    inform("fitting TensoRF for ", scene_name, "...");
    int steps = preset.train.steps;
    nerf::fitTensorf(*field, *scene, steps, preset.train.batch,
                     preset.train.lr);
    memo[key] = field;
    return field;
}

} // namespace asdr::core
