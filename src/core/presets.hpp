/**
 * @file
 * Central experiment scale knobs (DESIGN.md §5). Every bench draws its
 * frame size / sample count / model shape from here so the whole suite
 * can be scaled with one switch. Setting ASDR_FAST=1 in the environment
 * shrinks everything further for smoke runs.
 */

#ifndef ASDR_CORE_PRESETS_HPP
#define ASDR_CORE_PRESETS_HPP

#include <string>

#include "core/render_config.hpp"
#include "nerf/ngp_field.hpp"
#include "nerf/trainer.hpp"
#include "scene/analytic_scene.hpp"

namespace asdr::core {

struct ExperimentPreset
{
    /** Pixel budget per frame; each scene keeps its Table-1 aspect. */
    int pixel_budget = 4096;
    int samples_per_ray = 128;
    nerf::NgpModelConfig model;
    nerf::TrainConfig train;
    std::string name = "quality";

    /**
     * Fitted-field preset for PSNR/SSIM experiments: host-speed model
     * shape, moderate frames.
     */
    static ExperimentPreset quality();

    /**
     * Performance preset: procedural field with the paper-faithful
     * reference cost model, larger frames, ns = 192.
     */
    static ExperimentPreset perf();

    /** Resolution for a scene under this preset (aspect preserved). */
    void resolutionFor(const scene::SceneInfo &info, int &width,
                       int &height) const;

    /** A RenderConfig pre-sized for `info` (baseline settings). */
    RenderConfig renderConfigFor(const scene::SceneInfo &info) const;
};

/** True when ASDR_FAST=1 (shrinks presets for smoke runs). */
bool fastMode();

} // namespace asdr::core

#endif // ASDR_CORE_PRESETS_HPP
