#include "core/analysis.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "nerf/ngp_field.hpp"
#include "nerf/volume_render.hpp"
#include "util/hashing.hpp"
#include "util/logging.hpp"

namespace asdr::core {

namespace {

/** Captures the per-level voxel (first vertex) and indices of a point. */
class PointCapture : public nerf::LookupSink
{
  public:
    struct LevelTouch
    {
        Vec3i voxel;
        uint32_t index;
    };

    std::vector<LevelTouch> touches; ///< one per level (first vertex)
    std::vector<uint32_t> all_indices;
    std::vector<uint16_t> all_levels;

    void
    onPointLookups(const nerf::VertexLookup *lookups, size_t count) override
    {
        touches.clear();
        all_indices.clear();
        all_levels.clear();
        uint16_t current_level = 0xFFFF;
        for (size_t i = 0; i < count; ++i) {
            if (lookups[i].level != current_level) {
                current_level = lookups[i].level;
                touches.push_back({lookups[i].vertex, lookups[i].index});
            }
            all_indices.push_back(lookups[i].index);
            all_levels.push_back(lookups[i].level);
        }
    }
};

uint64_t
voxelKey(const Vec3i &v)
{
    return (uint64_t(uint32_t(v.x)) << 42) ^
           (uint64_t(uint32_t(v.y)) << 21) ^ uint64_t(uint32_t(v.z));
}

} // namespace

std::vector<Vec3>
rayPositions(const nerf::Ray &ray, int n, bool &hit)
{
    std::vector<Vec3> out;
    float t0, t1;
    hit = nerf::intersectUnitCube(ray, t0, t1);
    if (!hit)
        return out;
    float dt = (t1 - t0) / float(n);
    out.reserve(size_t(n));
    for (int i = 0; i < n; ++i)
        out.push_back(ray.origin + ray.dir * (t0 + (float(i) + 0.5f) * dt));
    return out;
}

AddressTraceResult
sampleAddressTrace(const nerf::RadianceField &field,
                   const nerf::Camera &camera, int samples_per_ray,
                   int max_points)
{
    AddressTraceResult result;
    nerf::TableSchema schema = field.tableSchema();

    // Flat address space: tables stacked in id order.
    std::vector<uint64_t> table_base(schema.tables.size() + 1, 0);
    for (size_t t = 0; t < schema.tables.size(); ++t)
        table_base[t + 1] = table_base[t] + schema.tables[t].entries;
    result.address_space = table_base.back();

    PointCapture capture;
    std::vector<double> jumps;
    uint64_t prev_addr = 0;
    bool have_prev = false;

    int points_done = 0;
    for (int y = 0; y < camera.height() && points_done < max_points; ++y) {
        for (int x = 0; x < camera.width() && points_done < max_points; ++x) {
            nerf::Ray ray = camera.ray(float(x) + 0.5f, float(y) + 0.5f);
            bool hit = false;
            auto positions = rayPositions(ray, samples_per_ray, hit);
            for (const auto &pos : positions) {
                if (points_done >= max_points)
                    break;
                field.traceLookups(pos, capture);
                for (size_t i = 0; i < capture.all_indices.size(); ++i) {
                    uint64_t addr =
                        table_base[capture.all_levels[i]] +
                        capture.all_indices[i];
                    result.records.push_back({points_done, addr});
                    if (have_prev)
                        jumps.push_back(std::fabs(double(addr) -
                                                  double(prev_addr)));
                    prev_addr = addr;
                    have_prev = true;
                }
                ++points_done;
            }
        }
    }

    if (!jumps.empty()) {
        double sum = 0.0;
        for (double j : jumps)
            sum += j;
        result.mean_jump = sum / double(jumps.size());
        std::nth_element(jumps.begin(), jumps.begin() + jumps.size() / 2,
                         jumps.end());
        result.median_jump = jumps[jumps.size() / 2];
    }
    return result;
}

double
colorSimilarityDistribution(const nerf::RadianceField &field,
                            const nerf::Camera &camera, int samples_per_ray,
                            Histogram &hist, int max_rays)
{
    uint64_t close_pairs = 0;
    uint64_t total_pairs = 0;

    int rays_done = 0;
    // Subsample the frame uniformly so the profile covers the image.
    int stride = std::max(1, (camera.width() * camera.height()) / max_rays);
    int pixel = 0;
    for (int y = 0; y < camera.height() && rays_done < max_rays; ++y) {
        for (int x = 0; x < camera.width() && rays_done < max_rays; ++x) {
            if (pixel++ % stride != 0)
                continue;
            nerf::Ray ray = camera.ray(float(x) + 0.5f, float(y) + 0.5f);
            bool hit = false;
            auto positions = rayPositions(ray, samples_per_ray, hit);
            if (!hit)
                continue;
            ++rays_done;

            Vec3 prev_color;
            float prev_sigma = 0.0f;
            bool have_prev = false;
            for (const auto &pos : positions) {
                nerf::DensityOutput den = field.density(pos);
                Vec3 c = field.color(pos, ray.dir, den);
                if (have_prev) {
                    // Skip empty-empty pairs: their colors never reach
                    // the output image.
                    if (prev_sigma > 0.01f || den.sigma > 0.01f) {
                        float sim = cosineSimilarity(prev_color, c);
                        hist.add(sim);
                        ++total_pairs;
                        if (sim >= 0.99f)
                            ++close_pairs;
                    }
                }
                prev_color = c;
                prev_sigma = den.sigma;
                have_prev = true;
            }
        }
    }
    return total_pairs ? double(close_pairs) / double(total_pairs) : 1.0;
}

RepetitionProfile
profileRepetition(const nerf::RadianceField &field,
                  const nerf::Camera &camera, int samples_per_ray,
                  int max_ray_pairs)
{
    nerf::TableSchema schema = field.tableSchema();
    const int levels = int(schema.tables.size());

    RepetitionProfile out;
    out.inter_ray.assign(size_t(levels), 0.0);
    out.intra_ray_max_points.assign(size_t(levels), 0.0);

    PointCapture capture;
    int pairs_done = 0;
    std::vector<double> inter_acc(size_t(levels), 0.0);
    std::vector<double> intra_acc(size_t(levels), 0.0);
    int inter_samples = 0;
    int intra_samples = 0;

    int stride =
        std::max(1, (camera.width() * camera.height()) / max_ray_pairs);
    int pixel = 0;
    for (int y = 0; y < camera.height() && pairs_done < max_ray_pairs; ++y) {
        for (int x = 0; x + 1 < camera.width() && pairs_done < max_ray_pairs;
             ++x) {
            if (pixel++ % stride != 0)
                continue;

            // Collect per-level voxel sets of this ray and its neighbor.
            auto collect = [&](int px) {
                std::vector<std::vector<uint64_t>> per_level(
                    static_cast<size_t>(levels));
                nerf::Ray ray =
                    camera.ray(float(px) + 0.5f, float(y) + 0.5f);
                bool hit = false;
                auto positions = rayPositions(ray, samples_per_ray, hit);
                for (const auto &pos : positions) {
                    field.traceLookups(pos, capture);
                    for (size_t l = 0; l < capture.touches.size(); ++l)
                        per_level[l].push_back(
                            voxelKey(capture.touches[l].voxel));
                }
                return per_level;
            };
            auto a = collect(x);
            auto b = collect(x + 1);
            if (a[0].empty() || b[0].empty())
                continue;
            ++pairs_done;

            for (int l = 0; l < levels; ++l) {
                // Inter-ray: fraction of b's points whose voxel appears
                // in a's voxel set.
                std::set<uint64_t> set_a(a[size_t(l)].begin(),
                                         a[size_t(l)].end());
                int rep = 0;
                for (uint64_t k : b[size_t(l)])
                    if (set_a.count(k))
                        ++rep;
                if (!b[size_t(l)].empty()) {
                    inter_acc[size_t(l)] +=
                        double(rep) / double(b[size_t(l)].size());
                }

                // Intra-ray: most-populated voxel along ray a.
                std::map<uint64_t, int> counts;
                int best = 0;
                for (uint64_t k : a[size_t(l)])
                    best = std::max(best, ++counts[k]);
                intra_acc[size_t(l)] += double(best);
            }
            ++inter_samples;
            ++intra_samples;
        }
    }

    for (int l = 0; l < levels; ++l) {
        out.inter_ray[size_t(l)] =
            inter_samples ? inter_acc[size_t(l)] / inter_samples : 0.0;
        out.intra_ray_max_points[size_t(l)] =
            intra_samples ? intra_acc[size_t(l)] / intra_samples : 0.0;
    }
    return out;
}

std::vector<std::pair<int, int>>
frameRayOrder(int width, int height, bool morton, int tile)
{
    std::vector<std::pair<int, int>> order;
    order.reserve(size_t(width) * size_t(height));
    if (morton) {
        for (int ty = 0; ty < (height + tile - 1) / tile; ++ty)
            for (int tx = 0; tx < (width + tile - 1) / tile; ++tx) {
                // Clipped edge-tile dims, exactly as renderTile sees them.
                const int tw = std::min(tile, width - tx * tile);
                const int th = std::min(tile, height - ty * tile);
                forEachMorton2D(tw, th, [&](int ux, int uy) {
                    order.push_back({tx * tile + ux, ty * tile + uy});
                });
            }
    } else {
        for (int y = 0; y < height; ++y)
            for (int x = 0; x < width; ++x)
                order.push_back({x, y});
    }
    return order;
}

EncodeReuseReport
measureEncodeReuse(const nerf::InstantNgpField &field,
                   const nerf::Camera &camera, int samples_per_ray,
                   int max_rays, bool morton_order, int batch, int tile)
{
    std::vector<std::pair<int, int>> order = frameRayOrder(
        camera.width(), camera.height(), morton_order, tile);

    const nerf::HashGrid &grid = field.grid();
    const int fd = grid.featureDim();
    nerf::EncodeReuseStats stats;
    stats.reset(grid.geometry().levels());
    std::vector<Vec3> pending;
    std::vector<float> feat;
    auto flush = [&]() {
        if (pending.empty())
            return;
        feat.resize(pending.size() * size_t(fd));
        grid.encodeBatch(pending.data(), int(pending.size()), feat.data(),
                         fd, &stats);
        pending.clear();
    };

    int rays_done = 0;
    for (const auto &[x, y] : order) {
        if (rays_done >= max_rays)
            break;
        nerf::Ray ray = camera.ray(float(x) + 0.5f, float(y) + 0.5f);
        bool hit = false;
        auto positions = rayPositions(ray, samples_per_ray, hit);
        if (!hit)
            continue;
        ++rays_done;
        for (const auto &pos : positions) {
            pending.push_back(pos);
            if (int(pending.size()) >= batch)
                flush();
        }
    }
    flush();

    EncodeReuseReport report;
    const int levels = int(stats.lookups.size());
    for (int l = 0; l < levels; ++l) {
        report.reuse_factor.push_back(stats.reuseFactor(l));
        report.coherent_fraction.push_back(stats.coherentFraction(l));
        report.total_lookups += stats.lookups[size_t(l)];
        report.total_unique += stats.unique[size_t(l)];
    }
    return report;
}

} // namespace asdr::core
