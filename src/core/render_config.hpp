/**
 * @file
 * All knobs of the ASDR rendering pipeline (paper §4-5): adaptive
 * sampling (probe stride d, difficulty threshold delta, candidate point
 * counts), volume-rendering approximation (group size n), early
 * termination, and frame geometry.
 */

#ifndef ASDR_CORE_RENDER_CONFIG_HPP
#define ASDR_CORE_RENDER_CONFIG_HPP

#include <cstdlib>
#include <thread>
#include <vector>

namespace asdr::core {

/**
 * Resolve RenderConfig::num_threads. 0 = auto: the ASDR_NUM_THREADS
 * environment variable when set, else the hardware concurrency.
 * Shared by the renderer facade and the frame engine so both size
 * their pools identically.
 */
inline int
resolveThreadCount(int requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("ASDR_NUM_THREADS")) {
        int v = std::atoi(env);
        if (v > 0)
            return v;
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? int(hw) : 1;
}

/** Resolve RenderConfig::morton_order. -1 = auto: ASDR_MORTON when
 *  set, else on. */
inline bool
resolveMorton(int requested)
{
    if (requested >= 0)
        return requested != 0;
    if (const char *env = std::getenv("ASDR_MORTON"))
        return std::atoi(env) != 0;
    return true;
}

/** Resolve SampleCacheParams::enabled. -1 = auto: ASDR_SAMPLE_CACHE
 *  when set, else off (the cache is opt-in). */
inline bool
resolveSampleCache(int requested)
{
    if (requested >= 0)
        return requested != 0;
    if (const char *env = std::getenv("ASDR_SAMPLE_CACHE"))
        return std::atoi(env) != 0;
    return false;
}

/**
 * Knobs of the cross-tenant sample reuse cache (core/sample_cache):
 * a per-scene memoization of density-network outputs shared by every
 * session and shard viewing the scene. Off by default; with
 * quant_step == 0 (the default) enabling it is bit-transparent --
 * hits return the exact float pattern recomputation would produce.
 */
struct SampleCacheParams
{
    /** -1 = auto: the ASDR_SAMPLE_CACHE environment variable when
     *  set, else off. */
    int enabled = -1;
    /**
     * Position quantization step (scene units; the cube is 1^3).
     * 0 = exact-key mode: keys are float bit patterns, output is
     * bit-identical to uncached rendering. > 0 buckets nearby samples
     * onto one cached value (more cross-viewer hits, bounded PSNR
     * cost -- gated by tests/test_sample_cache.cpp).
     */
    float quant_step = 0.0f;
    /** Per-scene memory budget of the slot array, MB. */
    int capacity_mb = 32;
    /** Independent lock-striped segments (rounded to a power of 2). */
    int shards = 8;
};

struct RenderConfig
{
    int width = 96;
    int height = 96;
    /** Fixed samples per ray ns (paper: 192 for the LEGO scene). */
    int samples_per_ray = 192;

    // --- Adaptive sampling (§4.2) ---
    bool adaptive_sampling = false;
    /** Probe-pixel stride d: (D/d)^2 pixels are probed in Phase I. */
    int probe_stride = 5;
    /** Difficulty threshold delta of Eq. (3); 0 = lossless criterion. */
    float delta = 0.0f;
    /**
     * Candidate subset strides: candidate count ns_i = ns / stride_i
     * (strided subsets reuse the probe ray's already-predicted points,
     * so Phase I costs no extra network work). Descending strides =
     * ascending candidate counts; the first candidate with
     * rd_i <= delta wins.
     */
    std::vector<int> subset_strides{16, 8, 4, 2};
    /** Lower bound on per-pixel samples after interpolation. */
    int min_samples = 8;

    // --- Volume-rendering approximation (§4.3) ---
    bool color_approx = false;
    /** Group size n: one color-network execution per n points. */
    int approx_group = 2;

    // --- Early termination (§6.6) ---
    bool early_termination = false;
    /** Terminate the march once transmittance falls below this. */
    float et_eps = 1e-3f;

    // --- Host execution (batching + threading) ---
    /**
     * Worker threads for the tile-parallel frame loop. 0 = auto: the
     * ASDR_NUM_THREADS environment variable when set, otherwise the
     * hardware concurrency. Frames are bit-identical for every value;
     * an attached trace sink forces the serial path regardless.
     */
    int num_threads = 0;
    /**
     * Points per batched field evaluation. Rays are marched in chunks
     * of this size so early termination stays exact (the march stops at
     * the same point the one-at-a-time path would). Values <= 1 select
     * the legacy point-at-a-time path (the bench's scalar reference).
     */
    int eval_batch = 32;
    /**
     * Cache-coherent Phase II ray ordering: tile the frame, walk each
     * tile's rays along a Z-curve, and march the whole tile depth-major
     * through the batch API, so consecutive points in a density batch
     * come from adjacent rays at similar depths and hit overlapping
     * hash-table cache lines (Cicero-style memory-order optimization).
     * Results are scattered back to pixel order, so frames stay
     * bit-identical to the row-order path. -1 = auto: the ASDR_MORTON
     * environment variable when set, otherwise on. Only the batched
     * path reorders; the scalar reference and traced renders keep
     * pixel order.
     */
    int morton_order = -1;
    /** Tile edge (pixels) of the Morton-ordered Phase II loop. */
    int tile_size = 8;

    /**
     * Densities below this are treated as exactly zero -- the software
     * equivalent of Instant-NGP's occupancy grid masking empty space.
     * Without it a trained field emits tiny nonzero densities
     * everywhere and the delta = 0 lossless criterion of Fig. 7 can
     * never fire on background pixels.
     */
    float sigma_floor = 0.1f;

    /**
     * Cross-tenant sample reuse cache (core/sample_cache). When
     * resolved on, the renderer overlays its field with a CachedField
     * (unless the field already is one -- the serving stack shares a
     * per-scene cache through SceneRegistry instead). Exact-key by
     * default, so the env-gated CI pass renders bit-identically.
     */
    SampleCacheParams sample_cache;

    // Convenience named configurations used across the benches.
    static RenderConfig
    baseline(int w, int h, int ns = 192)
    {
        RenderConfig cfg;
        cfg.width = w;
        cfg.height = h;
        cfg.samples_per_ray = ns;
        return cfg;
    }

    static RenderConfig
    asdr(int w, int h, int ns = 192)
    {
        RenderConfig cfg = baseline(w, h, ns);
        cfg.adaptive_sampling = true;
        cfg.delta = 1.0f / 2048.0f; // the paper's sweet spot (Fig. 21a)
        cfg.color_approx = true;
        cfg.approx_group = 2;
        cfg.early_termination = true;
        return cfg;
    }
};

} // namespace asdr::core

#endif // ASDR_CORE_RENDER_CONFIG_HPP
