#include "core/presets.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>

namespace asdr::core {

bool
fastMode()
{
    const char *env = std::getenv("ASDR_FAST");
    return env && env[0] == '1';
}

ExperimentPreset
ExperimentPreset::quality()
{
    ExperimentPreset preset;
    preset.name = "quality";
    preset.pixel_budget = fastMode() ? 1024 : 4096;
    preset.samples_per_ray = fastMode() ? 64 : 128;
    preset.model = nerf::NgpModelConfig::fast();
    preset.train.steps = fastMode() ? 400 : 2500;
    preset.train.batch = 96;
    preset.train.lr = 4e-3f;
    return preset;
}

ExperimentPreset
ExperimentPreset::perf()
{
    ExperimentPreset preset;
    preset.name = "perf";
    preset.pixel_budget = fastMode() ? 2048 : 9216; // ~96x96 equivalents
    preset.samples_per_ray = fastMode() ? 96 : 192;
    preset.model = nerf::NgpModelConfig::reference();
    return preset;
}

void
ExperimentPreset::resolutionFor(const scene::SceneInfo &info, int &width,
                                int &height) const
{
    double aspect = double(info.full_width) / double(info.full_height);
    double h = std::sqrt(double(pixel_budget) / aspect);
    height = std::max(16, int(std::lround(h)));
    width = std::max(16, int(std::lround(h * aspect)));
}

RenderConfig
ExperimentPreset::renderConfigFor(const scene::SceneInfo &info) const
{
    int w, h;
    resolutionFor(info, w, h);
    return RenderConfig::baseline(w, h, samples_per_ray);
}

} // namespace asdr::core
