/**
 * @file
 * Cross-tenant sample reuse cache: a per-scene, read-mostly
 * memoization layer mapping quantized sample position -> density
 * output (sigma + the geometry/color feature vector), shared by every
 * session and shard that views the scene. Where Morton batching (PR 2)
 * reuses table entries *within* a frame and the probe cache (PR 3)
 * reuses Phase I *within* a session, this layer amortizes the full
 * encode+MLP cost *across* viewers: the millionth viewer of a scene
 * mostly reads field outputs its neighbors already paid for (the
 * paper's data-reuse thesis applied memory-side, Cicero-style).
 *
 * Structure: N independent lock-striped segments ("shards", a power of
 * two), selected by splitmix64 of the quantized position. Each shard
 * is a fixed-size open-addressed slot array probed over a short linear
 * window. Slots follow a seqlock-with-atomics protocol -- every word
 * of a slot (sequence, key, epoch, value) is a relaxed/acquire atomic,
 * so readers are wait-free and never block behind writers, writers
 * never block behind readers, and the whole structure is clean under
 * ThreadSanitizer (no non-atomic data races; torn reads are detected
 * by the sequence recheck and degrade to a miss).
 *
 * Exactness: with quant_step == 0 the key is the exact float bit
 * pattern of the position, so a hit returns bit-for-bit what the field
 * would recompute -- frames render identical with the cache on or off.
 * A quant_step > 0 buckets nearby positions onto one representative
 * value (the neural-radiance-caching trade: more cross-viewer hits for
 * a bounded PSNR cost, gated by tests/test_sample_cache.cpp).
 *
 * Invalidation: the cache carries a global epoch. bumpEpoch() (after a
 * field update) logically drops every entry at once -- readers require
 * a slot's stored epoch to equal the epoch they snapshotted at probe
 * time, and writers publish the epoch they snapshotted *before*
 * evaluating the field, so a value computed against the old weights
 * can never be served after the bump. Stale slots are reclaimed in
 * place by later inserts.
 *
 * Memory: bounded by capacity_mb; when a probe window is full of live
 * entries, a clock/second-chance pass runs over the window (hits set a
 * reference bit, the evictor clears them and replaces the first
 * unreferenced slot).
 *
 * Not to be confused with core/field_cache.{cpp,hpp}, which is a
 * get-or-train disk cache of *fitted fields* (whole models); this
 * caches individual *sample evaluations* of one live field.
 */

#ifndef ASDR_CORE_SAMPLE_CACHE_HPP
#define ASDR_CORE_SAMPLE_CACHE_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/render_config.hpp"
#include "nerf/field.hpp"

namespace asdr::core {

/** Cumulative counters of one cache (served in ServerStats JSON and on
 *  the wire in StatsReply). */
struct SampleCacheCounters
{
    uint64_t hits = 0;        ///< probes served from the cache
    uint64_t misses = 0;      ///< probes that fell through to the field
    uint64_t inserts = 0;     ///< values published (refresh included)
    uint64_t evictions = 0;   ///< live entries replaced by second chance
    uint64_t epoch_drops = 0; ///< probes rejecting a stale-epoch entry

    double hitRate() const
    {
        const uint64_t total = hits + misses;
        return total ? double(hits) / double(total) : 0.0;
    }
};

class SampleCache
{
  public:
    /** Rounds shards and per-shard slots to powers of two; the slot
     *  array is allocated up front (the memory budget is the point). */
    explicit SampleCache(const SampleCacheParams &params);

    SampleCache(const SampleCache &) = delete;
    SampleCache &operator=(const SampleCache &) = delete;

    /** True when quant_step == 0: keys are exact float bit patterns
     *  and every hit is bit-identical to recomputation. */
    bool exactMode() const { return quant_step_ == 0.0f; }

    /** The epoch to probe and publish under. Snapshot once per batch,
     *  BEFORE evaluating misses -- publishing under the snapshot makes
     *  a concurrent bumpEpoch() atomically invalidate the in-flight
     *  values along with everything else. */
    uint32_t beginEpoch() const
    {
        return epoch_.load(std::memory_order_acquire);
    }

    /**
     * Probe `count` positions: hits fill `out[i]` with the cached
     * DensityOutput; the indices of the misses land in
     * `miss_idx[0..returned)`. Wait-free for readers; never writes the
     * table.
     */
    int probeBatch(const Vec3 *pos, int count, uint32_t epoch,
                   nerf::DensityOutput *out, int *miss_idx);

    /** Publish `count` freshly evaluated (position, value) pairs under
     *  the probe-time epoch. Best-effort and non-blocking: a slot
     *  contended by another writer is simply skipped. */
    void publishBatch(const Vec3 *pos, const nerf::DensityOutput *vals,
                      int count, uint32_t epoch);

    /** Single-point probe (the scalar render path). */
    bool probe(const Vec3 &pos, uint32_t epoch, nerf::DensityOutput &out);
    void publish(const Vec3 &pos, const nerf::DensityOutput &val,
                 uint32_t epoch);

    /**
     * Invalidate every entry at once (call after the scene's field is
     * retrained or updated in place). Entries published against the
     * old epoch are never served again, even if their publish lands
     * after this call returns.
     */
    void bumpEpoch();
    uint32_t epoch() const { return epoch_.load(std::memory_order_acquire); }

    SampleCacheCounters counters() const;

    float quantStep() const { return quant_step_; }
    int shardCount() const { return int(shards_.size()); }
    size_t slotCount() const;
    /** Bytes actually allocated for slot storage. */
    size_t memoryBytes() const;

  private:
    struct Key
    {
        uint32_t x = 0, y = 0, z = 0;
    };

    /**
     * One cache line of state per entry. seq: 0 = never used, odd =
     * writer mid-publish, even >= 2 = valid. A slot's words are only
     * meaningful when seq is even and unchanged across the read (the
     * seqlock validation); all words are atomics so concurrent access
     * is race-free by construction.
     */
    struct Slot
    {
        std::atomic<uint32_t> seq{0};
        std::atomic<uint32_t> kx{0}, ky{0}, kz{0};
        std::atomic<uint32_t> epoch{0};
        /** Second-chance reference bit (set on hit, cleared by the
         *  eviction scan). */
        std::atomic<uint32_t> ref{0};
        /** sigma then geo[0..kMaxGeoFeatures), as float bit patterns. */
        std::atomic<uint32_t> val[1 + nerf::kMaxGeoFeatures];
    };

    struct Shard
    {
        std::vector<Slot> slots;
        // Contended-counter stripe: batched deltas land here once per
        // probeBatch/publishBatch call, not once per point.
        std::atomic<uint64_t> hits{0};
        std::atomic<uint64_t> misses{0};
        std::atomic<uint64_t> inserts{0};
        std::atomic<uint64_t> evictions{0};
        std::atomic<uint64_t> epoch_drops{0};
    };

    Key makeKey(const Vec3 &pos) const;
    static uint64_t hashKey(const Key &k);
    Shard &shardOf(uint64_t h)
    {
        return shards_[size_t((h >> 48) & uint64_t(shard_mask_))];
    }

    /** Returns true on hit (fills `out`); `stale` reports an
     *  epoch-rejected candidate (the epoch_drops counter). */
    bool lookupSlot(Shard &sh, uint64_t h, const Key &k, uint32_t epoch,
                    nerf::DensityOutput &out, bool &stale) const;
    /** Returns true when a live entry was replaced (an eviction). */
    bool insertSlot(Shard &sh, uint64_t h, const Key &k, uint32_t epoch,
                    const nerf::DensityOutput &val, bool &inserted);

    float quant_step_ = 0.0f;
    float inv_step_ = 0.0f;
    uint32_t shard_mask_ = 0;
    uint32_t slot_mask_ = 0; ///< per-shard slot index mask
    std::vector<Shard> shards_;
    std::atomic<uint32_t> epoch_{1};
};

/**
 * Transparent RadianceField overlay: densityBatch() probes the shared
 * SampleCache, evaluates only the misses through the wrapped field's
 * (SIMD encode+MLP) batch path, scatters the results back in place,
 * and publishes the fresh values without blocking concurrent readers.
 * Color is direction-dependent and therefore never cached -- color
 * calls delegate, consuming the (possibly cache-served) geometry
 * features exactly as they would the field's own.
 *
 * In exact-key mode the overlay is bit-transparent: every render
 * through it is bitwise identical to rendering the inner field
 * directly (enforced across field types, thread counts, and shard
 * counts by tests/test_sample_cache.cpp).
 */
class CachedField final : public nerf::RadianceField
{
  public:
    /** `inner` must outlive the overlay; `cache` is shared with every
     *  other overlay of the same scene. */
    CachedField(const nerf::RadianceField &inner,
                std::shared_ptr<SampleCache> cache);

    const nerf::RadianceField &inner() const { return inner_; }
    SampleCache &cache() const { return *cache_; }
    std::shared_ptr<SampleCache> cachePtr() const { return cache_; }

    nerf::DensityOutput density(const Vec3 &pos) const override;
    Vec3 color(const Vec3 &pos, const Vec3 &dir,
               const nerf::DensityOutput &den) const override;
    void densityBatch(const Vec3 *pos, int count,
                      nerf::DensityOutput *out) const override;
    void colorBatch(const Vec3 *pos, const Vec3 &dir,
                    const nerf::DensityOutput *den, int count,
                    Vec3 *out) const override;
    void traceLookups(const Vec3 &pos, nerf::LookupSink &sink) const override;
    nerf::TableSchema tableSchema() const override;
    nerf::FieldCosts costs() const override;
    std::string describe() const override;

  private:
    const nerf::RadianceField &inner_;
    std::shared_ptr<SampleCache> cache_;
};

} // namespace asdr::core

#endif // ASDR_CORE_SAMPLE_CACHE_HPP
