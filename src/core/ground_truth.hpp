/**
 * @file
 * Ground-truth image synthesis: dense volume rendering of the analytic
 * scene itself (no neural network). This plays the role of the paper's
 * dataset reference images -- every PSNR/SSIM/LPIPS number compares a
 * field render against this.
 */

#ifndef ASDR_CORE_GROUND_TRUTH_HPP
#define ASDR_CORE_GROUND_TRUTH_HPP

#include "image/image.hpp"
#include "nerf/camera.hpp"
#include "scene/analytic_scene.hpp"

namespace asdr::core {

/**
 * Render `scene` analytically with `samples` points per ray (defaults
 * well above any field render, so discretization error is negligible).
 */
Image renderGroundTruth(const scene::AnalyticScene &scene,
                        const nerf::Camera &camera, int samples = 512);

} // namespace asdr::core

#endif // ASDR_CORE_GROUND_TRUTH_HPP
