/**
 * @file
 * Streaming render trace and aggregate workload profile.
 *
 * A full frame touches tens of millions of embedding-table vertices, so
 * the trace is never stored: the renderer pushes events into TraceSink
 * implementations (cycle-level simulators, locality profilers, address
 * visualizers) that consume them online. The WorkloadProfile aggregates
 * the counts that analytic models (GPU rooflines, FLOPs breakdowns)
 * need.
 */

#ifndef ASDR_CORE_TRACE_HPP
#define ASDR_CORE_TRACE_HPP

#include <cstdint>

#include "nerf/field.hpp"

namespace asdr::core {

/** Aggregate operation counts of one rendered frame. */
struct WorkloadProfile
{
    uint64_t rays = 0;          ///< rays actually marched
    uint64_t probe_rays = 0;    ///< Phase I (adaptive sampling) rays
    uint64_t points = 0;        ///< sampled points (density executed)
    uint64_t density_execs = 0; ///< density-network executions
    uint64_t color_execs = 0;   ///< color-network executions
    uint64_t approx_colors = 0; ///< colors produced by interpolation
    uint64_t lookups = 0;       ///< embedding-table vertex lookups

    void
    merge(const WorkloadProfile &o)
    {
        rays += o.rays;
        probe_rays += o.probe_rays;
        points += o.points;
        density_execs += o.density_execs;
        color_execs += o.color_execs;
        approx_colors += o.approx_colors;
        lookups += o.lookups;
    }

    double
    encodeFlops(const nerf::FieldCosts &costs) const
    {
        return double(points) * costs.encode_flops;
    }
    double
    densityFlops(const nerf::FieldCosts &costs) const
    {
        return double(density_execs) * costs.density_flops;
    }
    double
    colorFlops(const nerf::FieldCosts &costs) const
    {
        return double(color_execs) * costs.color_flops;
    }
    double
    totalFlops(const nerf::FieldCosts &costs) const
    {
        return encodeFlops(costs) + densityFlops(costs) + colorFlops(costs);
    }
    /** Bytes fetched from embedding tables (pre-cache). */
    double
    lookupBytes(const nerf::FieldCosts &costs, int bytes_per_feature = 4,
                int features = 2) const
    {
        (void)costs;
        return double(lookups) * double(features) * double(bytes_per_feature);
    }
};

/**
 * Streaming consumer of render events. All hooks have empty defaults so
 * a sink overrides only what it needs. Events arrive in render order:
 * frameBegin, then per ray (rayBegin, per point: pointLookups +
 * densityExec, colorExec for computed colors, rayEnd), frameEnd.
 */
class TraceSink : public nerf::LookupSink
{
  public:
    virtual void onFrameBegin(int width, int height) { (void)width; (void)height; }
    /** `probe` marks Phase I adaptive-sampling rays. */
    virtual void onRayBegin(int px, int py, bool probe)
    {
        (void)px; (void)py; (void)probe;
    }
    void onPointLookups(const nerf::VertexLookup *lookups,
                        size_t count) override
    {
        (void)lookups; (void)count;
    }
    virtual void onDensityExec() {}
    virtual void onColorExec() {}
    virtual void onApproxColor() {}
    virtual void onRayEnd() {}
    virtual void onFrameEnd() {}
};

/** Fan-out: broadcasts each event to several sinks (one render pass can
 *  feed the accelerator model and a locality profiler simultaneously). */
class MultiSink : public TraceSink
{
  public:
    void add(TraceSink *sink) { sinks_.push_back(sink); }

    void
    onFrameBegin(int w, int h) override
    {
        for (auto *s : sinks_)
            s->onFrameBegin(w, h);
    }
    void
    onRayBegin(int px, int py, bool probe) override
    {
        for (auto *s : sinks_)
            s->onRayBegin(px, py, probe);
    }
    void
    onPointLookups(const nerf::VertexLookup *lookups, size_t count) override
    {
        for (auto *s : sinks_)
            s->onPointLookups(lookups, count);
    }
    void
    onDensityExec() override
    {
        for (auto *s : sinks_)
            s->onDensityExec();
    }
    void
    onColorExec() override
    {
        for (auto *s : sinks_)
            s->onColorExec();
    }
    void
    onApproxColor() override
    {
        for (auto *s : sinks_)
            s->onApproxColor();
    }
    void
    onRayEnd() override
    {
        for (auto *s : sinks_)
            s->onRayEnd();
    }
    void
    onFrameEnd() override
    {
        for (auto *s : sinks_)
            s->onFrameEnd();
    }

  private:
    std::vector<TraceSink *> sinks_;
};

} // namespace asdr::core

#endif // ASDR_CORE_TRACE_HPP
