#include "core/renderer.hpp"

#include <chrono>
#include <cmath>
#include <cstdlib>

#include "core/color_approximator.hpp"
#include "core/sample_cache.hpp"
#include "engine/frame_engine.hpp"
#include "nerf/volume_render.hpp"
#include "util/hashing.hpp"
#include "util/logging.hpp"

namespace asdr::core {

namespace {

/** A private sample cache for this renderer, when the config asks for
 *  one and the field is not already a (scene-shared) overlay. */
std::shared_ptr<SampleCache>
makeRendererSampleCache(const nerf::RadianceField &field,
                        const RenderConfig &cfg)
{
    if (!resolveSampleCache(cfg.sample_cache.enabled))
        return nullptr;
    if (dynamic_cast<const CachedField *>(&field))
        return nullptr; // already overlaid upstream (SceneRegistry)
    return std::make_shared<SampleCache>(cfg.sample_cache);
}

} // namespace

AsdrRenderer::AsdrRenderer(const nerf::RadianceField &field,
                           const RenderConfig &cfg)
    : sample_cache_(makeRendererSampleCache(field, cfg)),
      cache_overlay_(sample_cache_ ? std::make_unique<CachedField>(
                                         field, sample_cache_)
                                   : nullptr),
      field_(cache_overlay_
                 ? static_cast<const nerf::RadianceField &>(*cache_overlay_)
                 : field),
      cfg_(cfg), sampler_(cfg),
      lookups_per_point_(field.costs().lookups_per_point)
{
    ASDR_ASSERT(cfg.samples_per_ray >= 2, "need at least 2 samples per ray");
    ASDR_ASSERT(cfg.approx_group >= 1, "approximation group must be >= 1");
}

// Out of line: engine::FrameEngine is incomplete in the header.
AsdrRenderer::~AsdrRenderer() = default;

AsdrRenderer::RayResult
AsdrRenderer::renderRay(const nerf::Ray &ray, int budget, bool probe,
                        RayWorkspace &ws, WorkloadProfile &profile,
                        TraceSink *sink) const
{
    RayResult result;
    result.color = Vec3(0.0f);

    float t0, t1;
    if (!intersectUnitCube(ray, t0, t1) || budget < 1)
        return result;
    result.hit_volume = true;

    const int n = budget;
    const float dt = (t1 - t0) / float(n);

    ws.positions.resize(size_t(n));
    ws.sigma.resize(size_t(n));
    ws.density.resize(size_t(n));
    ws.colors.resize(size_t(n));

    // All sample positions up front; the evaluation below consumes them
    // batch-at-a-time.
    for (int i = 0; i < n; ++i)
        ws.positions[size_t(i)] =
            ray.origin + ray.dir * (t0 + (float(i) + 0.5f) * dt);

    // Trace sinks need the exact per-point event stream, so they force
    // the scalar path; eval_batch <= 1 selects it explicitly (it is the
    // bench's point-at-a-time reference).
    const bool scalar = sink != nullptr || cfg_.eval_batch <= 1;
    const bool use_et = cfg_.early_termination && !probe;

    // ---- density pass (with early termination) ----
    int cut = n;
    float transmittance = 1.0f;
    if (scalar) {
        for (int i = 0; i < n; ++i) {
            const Vec3 &pos = ws.positions[size_t(i)];
            if (sink) {
                field_.traceLookups(pos, *sink);
                sink->onDensityExec();
            }
            ws.density[size_t(i)] = field_.density(pos);
            float sigma = ws.density[size_t(i)].sigma;
            if (sigma < cfg_.sigma_floor)
                sigma = 0.0f; // occupancy-grid-style empty-space masking
            ws.sigma[size_t(i)] = sigma;

            if (use_et) {
                transmittance *= 1.0f - nerf::alphaFromSigma(sigma, dt);
                if (transmittance < cfg_.et_eps) {
                    cut = i + 1;
                    break;
                }
            }
        }
    } else {
        // Under early termination the first chunks are small (16, then
        // doubling up to eval_batch) so a ray that saturates after a
        // few samples does not host-evaluate a full-width chunk tail.
        int chunk = use_et ? std::min(16, cfg_.eval_batch)
                           : cfg_.eval_batch;
        int c0 = 0;
        while (c0 < n && cut == n) {
            const int cn = std::min(chunk, n - c0);
            field_.densityBatch(ws.positions.data() + c0, cn,
                                ws.density.data() + c0);
            for (int i = c0; i < c0 + cn; ++i) {
                float sigma = ws.density[size_t(i)].sigma;
                if (sigma < cfg_.sigma_floor)
                    sigma = 0.0f;
                ws.sigma[size_t(i)] = sigma;

                if (use_et) {
                    transmittance *=
                        1.0f - nerf::alphaFromSigma(sigma, dt);
                    if (transmittance < cfg_.et_eps) {
                        cut = i + 1;
                        break;
                    }
                }
            }
            c0 += cn;
            chunk = std::min(chunk * 2, cfg_.eval_batch);
        }
    }
    result.points_used = cut;
    // Both paths charge exactly the points the modeled pipeline executes.
    // The batch path may host-evaluate a chunk tail past the termination
    // index; that is host slack, not workload, so it is not counted.
    profile.points += uint64_t(cut);
    profile.density_execs += uint64_t(cut);
    profile.lookups += uint64_t(cut) * uint64_t(lookups_per_point_);

    result.color = shadePoints(ray, ws.positions.data(), ws.density.data(),
                               ws.sigma.data(), ws.colors.data(), cut, dt,
                               scalar, ws, profile, sink);
    return result;
}

Vec3
AsdrRenderer::shadePoints(const nerf::Ray &ray, const Vec3 *positions,
                          const nerf::DensityOutput *density,
                          const float *sigma, Vec3 *colors, int cut,
                          float dt, bool scalar, RayWorkspace &ws,
                          WorkloadProfile &profile, TraceSink *sink) const
{
    // ---- color pass at anchors ----
    int group = cfg_.color_approx ? cfg_.approx_group : 1;
    ColorApproximator::anchorIndices(cut, group, ws.anchors);
    if (scalar) {
        for (int a : ws.anchors) {
            colors[size_t(a)] = field_.color(positions[size_t(a)], ray.dir,
                                             density[size_t(a)]);
            if (sink)
                sink->onColorExec();
        }
    } else {
        const int na = int(ws.anchors.size());
        ws.anchor_pos.resize(size_t(na));
        ws.anchor_den.resize(size_t(na));
        ws.anchor_col.resize(size_t(na));
        for (int k = 0; k < na; ++k) {
            const size_t a = size_t(ws.anchors[size_t(k)]);
            ws.anchor_pos[size_t(k)] = positions[a];
            ws.anchor_den[size_t(k)] = density[a];
        }
        field_.colorBatch(ws.anchor_pos.data(), ray.dir,
                          ws.anchor_den.data(), na, ws.anchor_col.data());
        for (int k = 0; k < na; ++k)
            colors[size_t(ws.anchors[size_t(k)])] =
                ws.anchor_col[size_t(k)];
    }
    profile.color_execs += uint64_t(ws.anchors.size());

    // ---- approximation unit fills the gaps ----
    int filled = ColorApproximator::interpolate(colors, ws.anchors, cut);
    profile.approx_colors += uint64_t(filled);
    if (sink)
        for (int i = 0; i < filled; ++i)
            sink->onApproxColor();

    // ---- RGB unit: Eq. (1) compositing ----
    nerf::CompositeResult comp = nerf::composite(sigma, colors, cut, dt);
    return comp.color;
}

void
AsdrRenderer::renderTile(const nerf::Camera &camera, int x0, int y0,
                         int tw, int th, const int *budgets,
                         const char *probed, TileWorkspace &tws, Image &img,
                         float *budget_map, float *actual_map,
                         WorkloadProfile &profile) const
{
    const int w = camera.width();
    const bool use_et = cfg_.early_termination;

    // ---- enumerate the tile's rays along the Z-curve ----
    tws.rays.clear();
    tws.px.clear();
    tws.py.clear();
    tws.budget.clear();
    forEachMorton2D(tw, th, [&](int ux, int uy) {
        const int x = x0 + ux;
        const int y = y0 + uy;
        if (probed && probed[size_t(y) * w + x])
            return;
        tws.px.push_back(x);
        tws.py.push_back(y);
        tws.budget.push_back(budgets ? budgets[size_t(y) * w + x]
                                     : cfg_.samples_per_ray);
        tws.rays.push_back(camera.ray(float(x) + 0.5f, float(y) + 0.5f));
    });
    const int R = int(tws.rays.size());
    if (R == 0)
        return;

    // ---- per-ray march setup (identical formulas to renderRay) ----
    tws.n.assign(size_t(R), 0);
    tws.t0.assign(size_t(R), 0.0f);
    tws.dt.assign(size_t(R), 0.0f);
    tws.offset.assign(size_t(R), 0);
    tws.cut.assign(size_t(R), 0);
    tws.scanned.assign(size_t(R), 0);
    tws.transmittance.assign(size_t(R), 1.0f);
    tws.alive.assign(size_t(R), 0);
    int total = 0;
    for (int r = 0; r < R; ++r) {
        float a, b;
        const int bud = tws.budget[size_t(r)];
        tws.offset[size_t(r)] = total;
        if (!nerf::intersectUnitCube(tws.rays[size_t(r)], a, b) || bud < 1)
            continue;
        tws.n[size_t(r)] = bud;
        tws.cut[size_t(r)] = bud;
        tws.t0[size_t(r)] = a;
        tws.dt[size_t(r)] = (b - a) / float(bud);
        tws.alive[size_t(r)] = 1;
        total += bud;
    }
    tws.positions.resize(size_t(total));
    tws.sigma.resize(size_t(total));
    tws.density.resize(size_t(total));
    tws.colors.resize(size_t(total));
    for (int r = 0; r < R; ++r) {
        const nerf::Ray &ray = tws.rays[size_t(r)];
        Vec3 *seg = tws.positions.data() + tws.offset[size_t(r)];
        const float t0 = tws.t0[size_t(r)];
        const float dt = tws.dt[size_t(r)];
        for (int i = 0; i < tws.n[size_t(r)]; ++i)
            seg[i] = ray.origin + ray.dir * (t0 + (float(i) + 0.5f) * dt);
    }

    // ---- depth-major chunked density pass: each batch holds all
    // surviving rays at a band of consecutive depths, in Z-curve ray
    // order, so consecutive batch points are spatially adjacent and
    // share hash-table cache lines. The band narrows to a single depth
    // while many rays march (batch width = survivors) and widens as
    // rays terminate, keeping batches near eval_batch points.
    int d0 = 0;
    for (;;) {
        int marching = 0;
        for (int r = 0; r < R; ++r)
            if (tws.alive[size_t(r)])
                ++marching;
        if (marching == 0)
            break;
        const int D = std::max(1, cfg_.eval_batch / marching);

        tws.batch_pos.clear();
        tws.batch_slot.clear();
        for (int d = d0; d < d0 + D; ++d)
            for (int r = 0; r < R; ++r)
                if (tws.alive[size_t(r)] && d < tws.n[size_t(r)]) {
                    const int slot = tws.offset[size_t(r)] + d;
                    tws.batch_pos.push_back(tws.positions[size_t(slot)]);
                    tws.batch_slot.push_back(slot);
                }
        const int bn = int(tws.batch_pos.size());
        tws.batch_den.resize(size_t(bn));
        field_.densityBatch(tws.batch_pos.data(), bn, tws.batch_den.data());
        for (int k = 0; k < bn; ++k)
            tws.density[size_t(tws.batch_slot[size_t(k)])] =
                tws.batch_den[size_t(k)];

        // Per-ray sigma floor + early-termination scan over the band;
        // the cut lands at exactly the per-ray path's index (points of
        // this band past the cut are host slack, not workload).
        for (int r = 0; r < R; ++r) {
            if (!tws.alive[size_t(r)])
                continue;
            const int off = tws.offset[size_t(r)];
            const int dmax = std::min(d0 + D, tws.n[size_t(r)]);
            for (int d = tws.scanned[size_t(r)]; d < dmax; ++d) {
                float sigma = tws.density[size_t(off + d)].sigma;
                if (sigma < cfg_.sigma_floor)
                    sigma = 0.0f;
                tws.sigma[size_t(off + d)] = sigma;
                if (use_et) {
                    tws.transmittance[size_t(r)] *=
                        1.0f - nerf::alphaFromSigma(sigma,
                                                    tws.dt[size_t(r)]);
                    if (tws.transmittance[size_t(r)] < cfg_.et_eps) {
                        tws.cut[size_t(r)] = d + 1;
                        tws.alive[size_t(r)] = 0;
                        break;
                    }
                }
            }
            if (tws.alive[size_t(r)]) {
                tws.scanned[size_t(r)] = dmax;
                if (dmax == tws.n[size_t(r)])
                    tws.alive[size_t(r)] = 0;
            }
        }
        d0 += D;
    }

    // ---- shade + scatter back to pixel order ----
    for (int r = 0; r < R; ++r) {
        profile.rays++;
        Vec3 color(0.0f);
        const int cut = tws.cut[size_t(r)];
        if (tws.n[size_t(r)] > 0) {
            profile.points += uint64_t(cut);
            profile.density_execs += uint64_t(cut);
            profile.lookups += uint64_t(cut) * uint64_t(lookups_per_point_);
            const int off = tws.offset[size_t(r)];
            color = shadePoints(tws.rays[size_t(r)],
                                tws.positions.data() + off,
                                tws.density.data() + off,
                                tws.sigma.data() + off,
                                tws.colors.data() + off, cut,
                                tws.dt[size_t(r)], /*scalar=*/false,
                                tws.shade, profile, nullptr);
        }
        const int x = tws.px[size_t(r)];
        const int y = tws.py[size_t(r)];
        img.at(x, y) = color;
        budget_map[size_t(y) * w + x] = float(tws.budget[size_t(r)]);
        actual_map[size_t(y) * w + x] = float(cut);
    }
}

FrameShape
AsdrRenderer::frameShape(int w, int h) const
{
    FrameShape s;
    s.adaptive = cfg_.adaptive_sampling;
    if (s.adaptive)
        AdaptiveSampler::probeGridDims(w, h, cfg_.probe_stride, s.gw, s.gh);
    s.morton = cfg_.eval_batch > 1 && resolveMorton(cfg_.morton_order);
    const int T = std::max(1, cfg_.tile_size);
    s.tiles_x = (w + T - 1) / T;
    s.tiles_y = (h + T - 1) / T;
    s.jobs = s.morton ? s.tiles_x * s.tiles_y : h;
    return s;
}

void
AsdrRenderer::beginFrame(FrameState &fs) const
{
    // The engine stamps `start` at submission (queue wait counts
    // toward the frame's wall clock); traced renders reach here with
    // it unset.
    if (fs.start == std::chrono::steady_clock::time_point())
        fs.start = std::chrono::steady_clock::now();
    const int w = fs.camera.width();
    const int h = fs.camera.height();
    // The engine derives the shape once at admission (the graph is
    // sized from it) and stores it into fs; only non-engine frames
    // (traced renders) reach here without one.
    if (fs.shape.jobs == 0) {
        fs.shape = frameShape(w, h);
        if (fs.force_row_order) { // traced renders keep pixel order
            fs.shape.morton = false;
            fs.shape.jobs = h;
        }
    }
    fs.img = Image(w, h);
    fs.budget_map.assign(size_t(w) * size_t(h),
                         float(cfg_.samples_per_ray));
    fs.actual_map.assign(size_t(w) * size_t(h), 0.0f);
    fs.probed.assign(size_t(w) * size_t(h), 0);
    if (fs.shape.adaptive && !fs.probes_reused) {
        fs.probe_counts.assign(size_t(fs.shape.gw) * size_t(fs.shape.gh),
                               cfg_.samples_per_ray);
        fs.probe_profiles.assign(size_t(fs.shape.gh), WorkloadProfile{});
    }
    fs.job_profiles.assign(size_t(fs.shape.jobs), WorkloadProfile{});
}

void
AsdrRenderer::probeRow(FrameState &fs, int gy) const
{
    // Phase I: probe every d-th pixel with the full budget. Every
    // (gx, gy) cell maps to a unique pixel (floor((h-1)/d)*d <= h-1),
    // so rows write disjoint outputs; per-row profiles are merged in
    // row order by finalizeFrame.
    thread_local RayWorkspace ws;
    const int w = fs.camera.width();
    const int h = fs.camera.height();
    const int d = cfg_.probe_stride;
    const int gw = fs.shape.gw;
    WorkloadProfile &rp = fs.probe_profiles[size_t(gy)];
    for (int gx = 0; gx < gw; ++gx) {
        int px, py;
        AdaptiveSampler::probePixel(gx, gy, d, w, h, px, py);
        if (fs.sink)
            fs.sink->onRayBegin(px, py, /*probe=*/true);
        nerf::Ray ray = fs.camera.ray(float(px) + 0.5f, float(py) + 0.5f);
        RayResult rr = renderRay(ray, cfg_.samples_per_ray, /*probe=*/true,
                                 ws, rp, fs.sink);
        rp.rays++;
        rp.probe_rays++;
        if (fs.sink)
            fs.sink->onRayEnd();

        int chosen = cfg_.samples_per_ray;
        if (rr.hit_volume) {
            float t0, t1;
            intersectUnitCube(ray, t0, t1);
            float dt = (t1 - t0) / float(cfg_.samples_per_ray);
            chosen = sampler_.selectCount(ws.sigma.data(), ws.colors.data(),
                                          cfg_.samples_per_ray, dt);
        } else {
            chosen = cfg_.min_samples;
        }
        fs.probe_counts[size_t(gy) * gw + gx] = chosen;
        // Probe pixels keep their full-budget color; the hardware holds
        // it in the render buffer already.
        fs.img.at(px, py) = rr.color;
        fs.probed[size_t(py) * w + px] = 1;
        fs.budget_map[size_t(py) * w + px] = float(chosen);
        fs.actual_map[size_t(py) * w + px] = float(rr.points_used);
    }
}

void
AsdrRenderer::planBudgets(FrameState &fs) const
{
    if (!fs.shape.adaptive)
        return;
    const int w = fs.camera.width();
    const int h = fs.camera.height();
    const int gw = fs.shape.gw;
    const int gh = fs.shape.gh;
    if (fs.probes_reused) {
        // RenderSession probe reuse: splat the cached per-cell probe
        // results (color, chosen budget, marched points) exactly where
        // a fresh Phase I would have written them, then interpolate
        // budgets from the cached counts. With an unchanged camera this
        // reproduces the fresh frame bit for bit at zero probe cost.
        ASDR_ASSERT(int(fs.reused_counts.size()) == gw * gh,
                    "probe cache does not match the probe grid");
        const int d = cfg_.probe_stride;
        for (int gy = 0; gy < gh; ++gy)
            for (int gx = 0; gx < gw; ++gx) {
                const size_t cell = size_t(gy) * gw + gx;
                int px, py;
                AdaptiveSampler::probePixel(gx, gy, d, w, h, px, py);
                fs.img.at(px, py) = fs.reused_colors[cell];
                fs.probed[size_t(py) * w + px] = 1;
                fs.budget_map[size_t(py) * w + px] =
                    float(fs.reused_counts[cell]);
                fs.actual_map[size_t(py) * w + px] = fs.reused_actual[cell];
            }
        fs.budgets =
            sampler_.interpolateCounts(fs.reused_counts, gw, gh, w, h);
    } else {
        fs.budgets =
            sampler_.interpolateCounts(fs.probe_counts, gw, gh, w, h);
    }
}

void
AsdrRenderer::phase2Job(FrameState &fs, int j) const
{
    // Phase II: render every remaining pixel with its budget. The
    // batched path defaults to Morton/tile-coherent ray ordering
    // (cache-line reuse across adjacent rays); the scalar reference
    // keeps row-major pixel order. Frames are bit-identical either way.
    const int w = fs.camera.width();
    const int h = fs.camera.height();
    const bool adaptive = fs.shape.adaptive;
    WorkloadProfile &jp = fs.job_profiles[size_t(j)];
    if (fs.shape.morton) {
        thread_local TileWorkspace tws;
        const int T = std::max(1, cfg_.tile_size);
        const int tx = j % fs.shape.tiles_x;
        const int ty = j / fs.shape.tiles_x;
        renderTile(fs.camera, tx * T, ty * T, std::min(T, w - tx * T),
                   std::min(T, h - ty * T),
                   adaptive ? fs.budgets.data() : nullptr,
                   adaptive ? fs.probed.data() : nullptr, tws, fs.img,
                   fs.budget_map.data(), fs.actual_map.data(), jp);
    } else {
        thread_local RayWorkspace ws;
        const int y = j;
        for (int x = 0; x < w; ++x) {
            if (adaptive && fs.probed[size_t(y) * w + x])
                continue;
            int budget = adaptive ? fs.budgets[size_t(y) * w + x]
                                  : cfg_.samples_per_ray;
            if (fs.sink)
                fs.sink->onRayBegin(x, y, /*probe=*/false);
            nerf::Ray ray = fs.camera.ray(float(x) + 0.5f, float(y) + 0.5f);
            RayResult rr =
                renderRay(ray, budget, /*probe=*/false, ws, jp, fs.sink);
            jp.rays++;
            if (fs.sink)
                fs.sink->onRayEnd();
            fs.img.at(x, y) = rr.color;
            fs.budget_map[size_t(y) * w + x] = float(budget);
            fs.actual_map[size_t(y) * w + x] = float(rr.points_used);
        }
    }
}

void
AsdrRenderer::finalizeFrame(FrameState &fs, RenderStats *stats) const
{
    if (!stats)
        return;
    WorkloadProfile profile;
    for (const auto &rp : fs.probe_profiles)
        profile.merge(rp);
    for (const auto &jp : fs.job_profiles)
        profile.merge(jp);
    stats->profile = profile;
    double budget_sum = 0.0, actual_sum = 0.0;
    for (float c : fs.budget_map)
        budget_sum += c;
    for (float c : fs.actual_map)
        actual_sum += c;
    const double pixels = double(fs.budget_map.size());
    stats->avg_points_per_pixel = budget_sum / pixels;
    stats->avg_actual_points_per_pixel = actual_sum / pixels;
    stats->sample_count_map = std::move(fs.budget_map);
    stats->actual_points_map = std::move(fs.actual_map);
    stats->wall_seconds = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - fs.start)
                              .count();
}

Image
AsdrRenderer::renderTraced(const nerf::Camera &camera, RenderStats *stats,
                           TraceSink &sink) const
{
    // Serial in-thread render over the same stage functions the engine
    // pipelines: trace sinks observe a strictly ordered per-point event
    // stream, so stages run one after another on this thread, Phase II
    // keeps row-major pixel order, and renderRay selects the scalar
    // path whenever the sink is attached.
    FrameState fs(camera);
    fs.force_row_order = true;
    fs.sink = &sink;
    beginFrame(fs);
    sink.onFrameBegin(camera.width(), camera.height());
    if (fs.shape.adaptive)
        for (int gy = 0; gy < fs.shape.gh; ++gy)
            probeRow(fs, gy);
    planBudgets(fs);
    for (int j = 0; j < fs.shape.jobs; ++j)
        phase2Job(fs, j);
    sink.onFrameEnd();
    finalizeFrame(fs, stats);
    return std::move(fs.img);
}

Image
AsdrRenderer::render(const nerf::Camera &camera, RenderStats *stats,
                     TraceSink *sink) const
{
    if (sink)
        return renderTraced(camera, stats, *sink);

    // Thin synchronous facade over the streaming engine: the worker
    // pool persists across render() calls instead of being rebuilt per
    // frame, and one frame's stages flow through the same FrameGraph
    // the pipelined path uses (max_frames_in_flight = 1 here -- the
    // caller blocks on the frame anyway).
    std::call_once(engine_once_, [&] {
        engine::EngineConfig ec;
        ec.num_threads = cfg_.num_threads;
        ec.max_frames_in_flight = 1;
        engine_ = std::make_unique<engine::FrameEngine>(ec);
    });
    engine::FrameRequest req(camera);
    req.renderer = this;
    engine::Frame frame = engine_->submit(std::move(req)).get();
    if (stats)
        *stats = std::move(frame.stats);
    return std::move(frame.image);
}

} // namespace asdr::core
