#include "core/renderer.hpp"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <thread>

#include "core/color_approximator.hpp"
#include "nerf/volume_render.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace asdr::core {

namespace {

/** 0 = auto: ASDR_NUM_THREADS when set, else hardware concurrency. */
int
resolveThreadCount(int requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("ASDR_NUM_THREADS")) {
        int v = std::atoi(env);
        if (v > 0)
            return v;
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? int(hw) : 1;
}

} // namespace

AsdrRenderer::AsdrRenderer(const nerf::RadianceField &field,
                           const RenderConfig &cfg)
    : field_(field), cfg_(cfg), sampler_(cfg),
      lookups_per_point_(field.costs().lookups_per_point)
{
    ASDR_ASSERT(cfg.samples_per_ray >= 2, "need at least 2 samples per ray");
    ASDR_ASSERT(cfg.approx_group >= 1, "approximation group must be >= 1");
}

AsdrRenderer::RayResult
AsdrRenderer::renderRay(const nerf::Ray &ray, int budget, bool probe,
                        RayWorkspace &ws, WorkloadProfile &profile,
                        TraceSink *sink) const
{
    RayResult result;
    result.color = Vec3(0.0f);

    float t0, t1;
    if (!intersectUnitCube(ray, t0, t1) || budget < 1)
        return result;
    result.hit_volume = true;

    const int n = budget;
    const float dt = (t1 - t0) / float(n);

    ws.positions.resize(size_t(n));
    ws.sigma.resize(size_t(n));
    ws.density.resize(size_t(n));
    ws.colors.resize(size_t(n));

    // All sample positions up front; the evaluation below consumes them
    // batch-at-a-time.
    for (int i = 0; i < n; ++i)
        ws.positions[size_t(i)] =
            ray.origin + ray.dir * (t0 + (float(i) + 0.5f) * dt);

    // Trace sinks need the exact per-point event stream, so they force
    // the scalar path; eval_batch <= 1 selects it explicitly (it is the
    // bench's point-at-a-time reference).
    const bool scalar = sink != nullptr || cfg_.eval_batch <= 1;
    const bool use_et = cfg_.early_termination && !probe;

    // ---- density pass (with early termination) ----
    int cut = n;
    float transmittance = 1.0f;
    if (scalar) {
        for (int i = 0; i < n; ++i) {
            const Vec3 &pos = ws.positions[size_t(i)];
            if (sink) {
                field_.traceLookups(pos, *sink);
                sink->onDensityExec();
            }
            ws.density[size_t(i)] = field_.density(pos);
            float sigma = ws.density[size_t(i)].sigma;
            if (sigma < cfg_.sigma_floor)
                sigma = 0.0f; // occupancy-grid-style empty-space masking
            ws.sigma[size_t(i)] = sigma;

            if (use_et) {
                transmittance *= 1.0f - nerf::alphaFromSigma(sigma, dt);
                if (transmittance < cfg_.et_eps) {
                    cut = i + 1;
                    break;
                }
            }
        }
    } else {
        // Under early termination the first chunks are small (16, then
        // doubling up to eval_batch) so a ray that saturates after a
        // few samples does not host-evaluate a full-width chunk tail.
        int chunk = use_et ? std::min(16, cfg_.eval_batch)
                           : cfg_.eval_batch;
        int c0 = 0;
        while (c0 < n && cut == n) {
            const int cn = std::min(chunk, n - c0);
            field_.densityBatch(ws.positions.data() + c0, cn,
                                ws.density.data() + c0);
            for (int i = c0; i < c0 + cn; ++i) {
                float sigma = ws.density[size_t(i)].sigma;
                if (sigma < cfg_.sigma_floor)
                    sigma = 0.0f;
                ws.sigma[size_t(i)] = sigma;

                if (use_et) {
                    transmittance *=
                        1.0f - nerf::alphaFromSigma(sigma, dt);
                    if (transmittance < cfg_.et_eps) {
                        cut = i + 1;
                        break;
                    }
                }
            }
            c0 += cn;
            chunk = std::min(chunk * 2, cfg_.eval_batch);
        }
    }
    result.points_used = cut;
    // Both paths charge exactly the points the modeled pipeline executes.
    // The batch path may host-evaluate a chunk tail past the termination
    // index; that is host slack, not workload, so it is not counted.
    profile.points += uint64_t(cut);
    profile.density_execs += uint64_t(cut);
    profile.lookups += uint64_t(cut) * uint64_t(lookups_per_point_);

    // ---- color pass at anchors ----
    int group = cfg_.color_approx ? cfg_.approx_group : 1;
    ColorApproximator::anchorIndices(cut, group, ws.anchors);
    if (scalar) {
        for (int a : ws.anchors) {
            ws.colors[size_t(a)] = field_.color(ws.positions[size_t(a)],
                                                ray.dir,
                                                ws.density[size_t(a)]);
            if (sink)
                sink->onColorExec();
        }
    } else {
        const int na = int(ws.anchors.size());
        ws.anchor_pos.resize(size_t(na));
        ws.anchor_den.resize(size_t(na));
        ws.anchor_col.resize(size_t(na));
        for (int k = 0; k < na; ++k) {
            const size_t a = size_t(ws.anchors[size_t(k)]);
            ws.anchor_pos[size_t(k)] = ws.positions[a];
            ws.anchor_den[size_t(k)] = ws.density[a];
        }
        field_.colorBatch(ws.anchor_pos.data(), ray.dir,
                          ws.anchor_den.data(), na, ws.anchor_col.data());
        for (int k = 0; k < na; ++k)
            ws.colors[size_t(ws.anchors[size_t(k)])] =
                ws.anchor_col[size_t(k)];
    }
    profile.color_execs += uint64_t(ws.anchors.size());

    // ---- approximation unit fills the gaps ----
    int filled =
        ColorApproximator::interpolate(ws.colors.data(), ws.anchors, cut);
    profile.approx_colors += uint64_t(filled);
    if (sink)
        for (int i = 0; i < filled; ++i)
            sink->onApproxColor();

    // ---- RGB unit: Eq. (1) compositing ----
    nerf::CompositeResult comp =
        nerf::composite(ws.sigma.data(), ws.colors.data(), cut, dt);
    result.color = comp.color;
    return result;
}

Image
AsdrRenderer::render(const nerf::Camera &camera, RenderStats *stats,
                     TraceSink *sink) const
{
    auto start = std::chrono::steady_clock::now();

    const int w = camera.width();
    const int h = camera.height();
    Image img(w, h);

    // Trace sinks observe a strictly ordered event stream -> serial.
    const int threads = sink ? 1 : resolveThreadCount(cfg_.num_threads);
    ThreadPool pool(threads);

    WorkloadProfile profile;
    std::vector<float> budget_map(size_t(w) * size_t(h),
                                  float(cfg_.samples_per_ray));
    std::vector<float> actual_map(size_t(w) * size_t(h), 0.0f);

    if (sink)
        sink->onFrameBegin(w, h);

    std::vector<int> budgets;
    std::vector<char> probed(size_t(w) * size_t(h), 0);

    if (cfg_.adaptive_sampling) {
        // ---- Phase I: probe every d-th pixel with the full budget ----
        // Probe-grid rows are independent jobs; every (gx, gy) cell maps
        // to a unique pixel (floor((h-1)/d)*d <= h-1), so all writes are
        // disjoint. Per-row profiles are merged in row order below.
        const int d = cfg_.probe_stride;
        int gw, gh;
        AdaptiveSampler::probeGridDims(w, h, d, gw, gh);
        std::vector<int> probe_counts(size_t(gw) * size_t(gh),
                                      cfg_.samples_per_ray);
        std::vector<WorkloadProfile> row_profiles(static_cast<size_t>(gh));
        pool.parallelFor(0, gh, [&](int gy) {
            static thread_local RayWorkspace ws;
            WorkloadProfile &rp = row_profiles[size_t(gy)];
            for (int gx = 0; gx < gw; ++gx) {
                int px = std::min(gx * d, w - 1);
                int py = std::min(gy * d, h - 1);
                if (sink)
                    sink->onRayBegin(px, py, /*probe=*/true);
                nerf::Ray ray =
                    camera.ray(float(px) + 0.5f, float(py) + 0.5f);
                RayResult rr = renderRay(ray, cfg_.samples_per_ray,
                                         /*probe=*/true, ws, rp, sink);
                rp.rays++;
                rp.probe_rays++;
                if (sink)
                    sink->onRayEnd();

                int chosen = cfg_.samples_per_ray;
                if (rr.hit_volume) {
                    float t0, t1;
                    intersectUnitCube(ray, t0, t1);
                    float dt = (t1 - t0) / float(cfg_.samples_per_ray);
                    chosen = sampler_.selectCount(ws.sigma.data(),
                                                  ws.colors.data(),
                                                  cfg_.samples_per_ray, dt);
                } else {
                    chosen = cfg_.min_samples;
                }
                probe_counts[size_t(gy) * gw + gx] = chosen;
                // Probe pixels keep their full-budget color; the
                // hardware holds it in the render buffer already.
                img.at(px, py) = rr.color;
                probed[size_t(py) * w + px] = 1;
                budget_map[size_t(py) * w + px] = float(chosen);
                actual_map[size_t(py) * w + px] = float(rr.points_used);
            }
        });
        for (const auto &rp : row_profiles)
            profile.merge(rp);
        budgets = sampler_.interpolateCounts(probe_counts, gw, gh, w, h);
    }

    // ---- Phase II: render every (remaining) pixel with its budget ----
    {
        std::vector<WorkloadProfile> row_profiles(static_cast<size_t>(h));
        pool.parallelFor(0, h, [&](int y) {
            static thread_local RayWorkspace ws;
            WorkloadProfile &rp = row_profiles[size_t(y)];
            for (int x = 0; x < w; ++x) {
                if (cfg_.adaptive_sampling && probed[size_t(y) * w + x])
                    continue;
                int budget = cfg_.adaptive_sampling
                                 ? budgets[size_t(y) * w + x]
                                 : cfg_.samples_per_ray;
                if (sink)
                    sink->onRayBegin(x, y, /*probe=*/false);
                nerf::Ray ray =
                    camera.ray(float(x) + 0.5f, float(y) + 0.5f);
                RayResult rr = renderRay(ray, budget, /*probe=*/false, ws,
                                         rp, sink);
                rp.rays++;
                if (sink)
                    sink->onRayEnd();
                img.at(x, y) = rr.color;
                budget_map[size_t(y) * w + x] = float(budget);
                actual_map[size_t(y) * w + x] = float(rr.points_used);
            }
        });
        for (const auto &rp : row_profiles)
            profile.merge(rp);
    }

    if (sink)
        sink->onFrameEnd();

    if (stats) {
        stats->profile = profile;
        double budget_sum = 0.0, actual_sum = 0.0;
        for (float c : budget_map)
            budget_sum += c;
        for (float c : actual_map)
            actual_sum += c;
        const double pixels = double(budget_map.size());
        stats->avg_points_per_pixel = budget_sum / pixels;
        stats->avg_actual_points_per_pixel = actual_sum / pixels;
        stats->sample_count_map = std::move(budget_map);
        stats->actual_points_map = std::move(actual_map);
        stats->wall_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
    }
    return img;
}

} // namespace asdr::core
