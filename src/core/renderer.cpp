#include "core/renderer.hpp"

#include <chrono>
#include <cmath>

#include "core/color_approximator.hpp"
#include "nerf/volume_render.hpp"
#include "util/logging.hpp"

namespace asdr::core {

AsdrRenderer::AsdrRenderer(const nerf::RadianceField &field,
                           const RenderConfig &cfg)
    : field_(field), cfg_(cfg), sampler_(cfg)
{
    ASDR_ASSERT(cfg.samples_per_ray >= 2, "need at least 2 samples per ray");
    ASDR_ASSERT(cfg.approx_group >= 1, "approximation group must be >= 1");
}

AsdrRenderer::RayResult
AsdrRenderer::renderRay(const nerf::Ray &ray, int budget, bool probe,
                        RayWorkspace &ws, WorkloadProfile &profile,
                        TraceSink *sink) const
{
    RayResult result;
    result.color = Vec3(0.0f);

    float t0, t1;
    if (!intersectUnitCube(ray, t0, t1) || budget < 1)
        return result;
    result.hit_volume = true;

    const int n = budget;
    const float dt = (t1 - t0) / float(n);
    const int lookups_per_point = field_.costs().lookups_per_point;

    ws.positions.resize(size_t(n));
    ws.sigma.resize(size_t(n));
    ws.density.resize(size_t(n));
    ws.colors.resize(size_t(n));

    // ---- density pass (with early termination) ----
    bool use_et = cfg_.early_termination && !probe;
    float transmittance = 1.0f;
    int cut = n;
    for (int i = 0; i < n; ++i) {
        Vec3 pos = ray.origin + ray.dir * (t0 + (float(i) + 0.5f) * dt);
        ws.positions[size_t(i)] = pos;
        if (sink) {
            field_.traceLookups(pos, *sink);
            sink->onDensityExec();
        }
        profile.points++;
        profile.density_execs++;
        profile.lookups += uint64_t(lookups_per_point);

        ws.density[size_t(i)] = field_.density(pos);
        float sigma = ws.density[size_t(i)].sigma;
        if (sigma < cfg_.sigma_floor)
            sigma = 0.0f; // occupancy-grid-style empty-space masking
        ws.sigma[size_t(i)] = sigma;

        if (use_et) {
            transmittance *=
                1.0f - nerf::alphaFromSigma(ws.sigma[size_t(i)], dt);
            if (transmittance < cfg_.et_eps) {
                cut = i + 1;
                break;
            }
        }
    }
    result.points_used = cut;

    // ---- color pass at anchors ----
    int group = cfg_.color_approx ? cfg_.approx_group : 1;
    ColorApproximator::anchorIndices(cut, group, ws.anchors);
    for (int a : ws.anchors) {
        ws.colors[size_t(a)] = field_.color(ws.positions[size_t(a)], ray.dir,
                                            ws.density[size_t(a)]);
        profile.color_execs++;
        if (sink)
            sink->onColorExec();
    }

    // ---- approximation unit fills the gaps ----
    int filled =
        ColorApproximator::interpolate(ws.colors.data(), ws.anchors, cut);
    profile.approx_colors += uint64_t(filled);
    if (sink)
        for (int i = 0; i < filled; ++i)
            sink->onApproxColor();

    // ---- RGB unit: Eq. (1) compositing ----
    nerf::CompositeResult comp =
        nerf::composite(ws.sigma.data(), ws.colors.data(), cut, dt);
    result.color = comp.color;
    return result;
}

Image
AsdrRenderer::render(const nerf::Camera &camera, RenderStats *stats,
                     TraceSink *sink) const
{
    auto start = std::chrono::steady_clock::now();

    const int w = camera.width();
    const int h = camera.height();
    Image img(w, h);

    WorkloadProfile profile;
    std::vector<float> count_map(size_t(w) * size_t(h),
                                 float(cfg_.samples_per_ray));
    RayWorkspace ws;

    if (sink)
        sink->onFrameBegin(w, h);

    std::vector<int> budgets;
    std::vector<char> probed(size_t(w) * size_t(h), 0);

    if (cfg_.adaptive_sampling) {
        // ---- Phase I: probe every d-th pixel with the full budget ----
        const int d = cfg_.probe_stride;
        int gw, gh;
        AdaptiveSampler::probeGridDims(w, h, d, gw, gh);
        std::vector<int> probe_counts(size_t(gw) * size_t(gh),
                                      cfg_.samples_per_ray);
        for (int gy = 0; gy < gh; ++gy) {
            for (int gx = 0; gx < gw; ++gx) {
                int px = std::min(gx * d, w - 1);
                int py = std::min(gy * d, h - 1);
                if (sink)
                    sink->onRayBegin(px, py, /*probe=*/true);
                nerf::Ray ray =
                    camera.ray(float(px) + 0.5f, float(py) + 0.5f);
                RayResult rr = renderRay(ray, cfg_.samples_per_ray,
                                         /*probe=*/true, ws, profile, sink);
                profile.rays++;
                profile.probe_rays++;
                if (sink)
                    sink->onRayEnd();

                int chosen = cfg_.samples_per_ray;
                if (rr.hit_volume) {
                    float t0, t1;
                    intersectUnitCube(ray, t0, t1);
                    float dt = (t1 - t0) / float(cfg_.samples_per_ray);
                    chosen = sampler_.selectCount(ws.sigma.data(),
                                                  ws.colors.data(),
                                                  cfg_.samples_per_ray, dt);
                } else {
                    chosen = cfg_.min_samples;
                }
                probe_counts[size_t(gy) * gw + gx] = chosen;
                // Probe pixels keep their full-budget color; the
                // hardware holds it in the render buffer already.
                img.at(px, py) = rr.color;
                probed[size_t(py) * w + px] = 1;
                count_map[size_t(py) * w + px] = float(chosen);
            }
        }
        budgets = sampler_.interpolateCounts(probe_counts, gw, gh, w, h);
    }

    // ---- Phase II: render every (remaining) pixel with its budget ----
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            if (cfg_.adaptive_sampling && probed[size_t(y) * w + x])
                continue;
            int budget = cfg_.adaptive_sampling
                             ? budgets[size_t(y) * w + x]
                             : cfg_.samples_per_ray;
            if (sink)
                sink->onRayBegin(x, y, /*probe=*/false);
            nerf::Ray ray = camera.ray(float(x) + 0.5f, float(y) + 0.5f);
            RayResult rr =
                renderRay(ray, budget, /*probe=*/false, ws, profile, sink);
            profile.rays++;
            if (sink)
                sink->onRayEnd();
            img.at(x, y) = rr.color;
            count_map[size_t(y) * w + x] =
                float(cfg_.adaptive_sampling ? budget : rr.points_used);
        }
    }

    if (sink)
        sink->onFrameEnd();

    if (stats) {
        stats->profile = profile;
        double sum = 0.0;
        for (float c : count_map)
            sum += c;
        stats->avg_points_per_pixel = sum / double(count_map.size());
        stats->sample_count_map = std::move(count_map);
        stats->wall_seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          start)
                .count();
    }
    return img;
}

} // namespace asdr::core
